package partition

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/obs"
)

// Partition-layer observability: runs counts components actually sharded
// (single-shard degenerations and callers below the area threshold never
// reach it), shards/cut_edges/repair_moves accumulate per run, drift
// observes the per-run DriftEstimate, fallbacks counts hard-budget
// breaches. The catalog entry lives in docs/OBSERVABILITY.md.
var (
	partRuns        = obs.Default().Counter("geacc_partition_runs_total")
	partShards      = obs.Default().Counter("geacc_partition_shards_total")
	partCutEdges    = obs.Default().Counter("geacc_partition_cut_edges_total")
	partRepairMoves = obs.Default().Counter("geacc_partition_repair_moves_total")
	partFallbacks   = obs.Default().Counter("geacc_partition_fallbacks_total")
	partDrift       = obs.Default().Histogram("geacc_partition_drift", DriftBuckets)
)

// DriftBuckets are the histogram bounds for geacc_partition_drift: relative
// MaxSum-loss estimates, so the interesting range is well below 1.
var DriftBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25}

// ShardSolveFunc solves one shard sub-instance. events/users are the
// shard's index lists in the component's space; shard is the shard's index
// (stable across runs — derive per-shard seeds from it).
type ShardSolveFunc func(ctx context.Context, sub *core.Instance, events, users []int, shard int) (*core.Matching, error)

// MonoSolveFunc solves the whole component unsharded: the fallback when the
// drift budget is breached and the answer when the component degenerates to
// a single shard.
type MonoSolveFunc func(ctx context.Context) (*core.Matching, error)

// Stats describes one SolveComponent run.
type Stats struct {
	Shards        int
	LargestEvents int
	LargestUsers  int
	CutPairs      int
	CutConflicts  int
	CutWeight     float64
	LostCutBound  float64
	RepairMoves   int
	RepairGain    float64
	// DriftEstimate = LostCutBound / merged MaxSum — the bounded relative
	// loss vs the unsharded optimum (see the package comment).
	DriftEstimate float64
	FellBack      bool
	Strategy      string
	BuildSeconds  float64
}

// SolveComponent shards in, solves the shards through solve in a bounded
// worker pool, merges deterministically, runs the boundary repair pass, and
// enforces the hard drift budget (falling back to mono on a breach).
// core.ErrNodeLimit from a shard (or the fallback) is non-fatal and
// returned alongside the best-so-far matching, mirroring internal/decomp.
func SolveComponent(ctx context.Context, in *core.Instance, opt Options, solve ShardSolveFunc, mono MonoSolveFunc) (*core.Matching, *Stats, error) {
	opt = opt.Normalized()
	rec := obs.RecorderFrom(ctx)
	sp := rec.Start("partition/component").
		Annotate("strategy", string(opt.Strategy)).
		Annotate("events", in.NumEvents()).
		Annotate("users", in.NumUsers())
	start := time.Now()
	sl, err := buildSplit(in, opt)
	if err != nil {
		sp.Annotate("error", err.Error()).End()
		return nil, nil, err
	}
	st := &Stats{Strategy: string(opt.Strategy), BuildSeconds: time.Since(start).Seconds()}
	if sl == nil || len(sl.shards) < 2 {
		// Nothing to shard (k clamped to 1, or every user piled into one
		// shard): the monolithic solve is the answer, with zero drift.
		st.Shards = 1
		m, err := mono(ctx)
		sp.Annotate("shards", 1).End()
		return m, st, err
	}

	st.Shards = len(sl.shards)
	st.CutPairs = len(sl.cuts)
	st.CutConflicts = sl.cutConflicts
	st.CutWeight = sl.cutWeight
	st.LostCutBound = sl.lostCutBound
	for _, sh := range sl.shards {
		if len(sh.Events)*len(sh.Users) > st.LargestEvents*st.LargestUsers {
			st.LargestEvents = len(sh.Events)
			st.LargestUsers = len(sh.Users)
		}
	}

	results, budgetErr, err := solveShards(ctx, rec, sl.shards, opt.Workers, solve)
	if err != nil {
		sp.Annotate("error", err.Error()).End()
		return nil, nil, err
	}

	// Deterministic merge in shard order, back into component indices.
	merged := core.NewMatching()
	for j, sh := range sl.shards {
		if results[j] == nil {
			continue
		}
		for _, p := range results[j].Pairs() {
			merged.Add(sh.Events[p.V], sh.Users[p.U], p.Sim)
		}
	}

	rsp := rec.Start("partition/repair").Annotate("cut_pairs", len(sl.cuts))
	repaired, moves, gain := repairBoundary(in, merged, sl.cuts, opt.RepairRounds)
	rsp.Annotate("moves", moves).End()
	merged = repaired
	st.RepairMoves = moves
	st.RepairGain = gain

	if ms := merged.MaxSum(); ms > 0 {
		st.DriftEstimate = sl.lostCutBound / ms
	} else if sl.lostCutBound > 0 {
		st.DriftEstimate = 1
	}
	partRuns.Inc()
	partShards.Add(int64(st.Shards))
	partCutEdges.Add(int64(st.CutPairs))
	partRepairMoves.Add(int64(moves))
	partDrift.Observe(st.DriftEstimate)
	sp.Annotate("shards", st.Shards).
		Annotate("cut_pairs", st.CutPairs).
		Annotate("drift_estimate", st.DriftEstimate)

	if st.DriftEstimate > opt.DriftBudget {
		// Hard budget: the bounded loss is too large — solve unsharded.
		partFallbacks.Inc()
		st.FellBack = true
		m, err := mono(ctx)
		sp.Annotate("fallback", true).End()
		return m, st, err
	}

	if err := core.Validate(in, merged); err != nil {
		sp.Annotate("error", err.Error()).End()
		return nil, nil, fmt.Errorf("partition: merged matching infeasible: %w", err)
	}
	sp.End()
	return merged, st, budgetErr
}

// solveShards is the bounded shard worker pool: same drain-on-failure and
// ErrNodeLimit semantics as decomp's component pool.
func solveShards(ctx context.Context, rec *obs.Recorder, shards []Shard, workers int, solve ShardSolveFunc) ([]*core.Matching, error, error) {
	n := len(shards)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	results := make([]*core.Matching, n)
	errs := make([]error, n)
	var failed atomic.Bool
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if failed.Load() {
					continue
				}
				if err := ctx.Err(); err != nil {
					errs[j] = err
					failed.Store(true)
					continue
				}
				sh := shards[j]
				ssp := rec.Start("partition/shard").
					Annotate("shard", j).
					Annotate("events", len(sh.Events)).
					Annotate("users", len(sh.Users))
				m, err := solve(ctx, sh.Sub, sh.Events, sh.Users, j)
				results[j], errs[j] = m, err
				if err != nil && !errors.Is(err, core.ErrNodeLimit) {
					failed.Store(true)
					ssp.Annotate("error", err.Error()).End()
					continue
				}
				ssp.Annotate("pairs", m.Size()).End()
			}
		}()
	}
	for j := 0; j < n; j++ {
		jobs <- j
	}
	close(jobs)
	wg.Wait()

	var budgetErr error
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, core.ErrNodeLimit):
			budgetErr = err
		default:
			return nil, nil, err
		}
	}
	return results, budgetErr, nil
}
