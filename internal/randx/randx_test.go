package randx

import (
	"math"
	"testing"
)

func TestSourceDeterministic(t *testing.T) {
	a, b := Source(42), Source(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSubIndependentButReproducible(t *testing.T) {
	p1, p2 := Source(7), Source(7)
	c1, c2 := Sub(p1), Sub(p2)
	for i := 0; i < 50; i++ {
		if c1.Int63() != c2.Int63() {
			t.Fatal("derived streams diverged for identical parents")
		}
	}
}

func TestUniformRange(t *testing.T) {
	rng := Source(1)
	for i := 0; i < 10000; i++ {
		x := Uniform(rng, -3, 7)
		if x < -3 || x > 7 {
			t.Fatalf("Uniform out of range: %v", x)
		}
	}
}

func TestUniformIntRangeAndCoverage(t *testing.T) {
	rng := Source(2)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		x := UniformInt(rng, 1, 4)
		if x < 1 || x > 4 {
			t.Fatalf("UniformInt out of range: %d", x)
		}
		seen[x] = true
	}
	for v := 1; v <= 4; v++ {
		if !seen[v] {
			t.Errorf("value %d never sampled", v)
		}
	}
}

func TestUniformIntSingleton(t *testing.T) {
	rng := Source(3)
	for i := 0; i < 10; i++ {
		if got := UniformInt(rng, 5, 5); got != 5 {
			t.Fatalf("UniformInt(5,5) = %d", got)
		}
	}
}

func TestNormalTruncation(t *testing.T) {
	rng := Source(4)
	for i := 0; i < 10000; i++ {
		x := Normal(rng, 25, 12.5, 1, 50)
		if x < 1 || x > 50 {
			t.Fatalf("Normal out of range: %v", x)
		}
	}
}

func TestNormalMeanApproximate(t *testing.T) {
	rng := Source(5)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += Normal(rng, 25, 12.5, -1000, 1000)
	}
	mean := sum / n
	if math.Abs(mean-25) > 0.5 {
		t.Errorf("sample mean %v too far from 25", mean)
	}
}

func TestNormalPathologicalTerminates(t *testing.T) {
	rng := Source(6)
	// Mean far outside the window: must still terminate and stay in range.
	x := Normal(rng, 1e9, 1, 0, 1)
	if x < 0 || x > 1 {
		t.Fatalf("pathological Normal out of range: %v", x)
	}
}

func TestNormalIntBounds(t *testing.T) {
	rng := Source(7)
	for i := 0; i < 5000; i++ {
		n := NormalInt(rng, 2, 1, 1, 8)
		if n < 1 || n > 8 {
			t.Fatalf("NormalInt out of range: %d", n)
		}
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	rng := Source(8)
	z := NewZipf(rng, 1.3, 1000, 10000)
	lowHalf := 0
	const n = 20000
	for i := 0; i < n; i++ {
		x := z.Next()
		if x < 0 || x > 10000 {
			t.Fatalf("Zipf out of range: %v", x)
		}
		if x < 5000 {
			lowHalf++
		}
	}
	// Zipf mass concentrates near rank 0, so the low half of the range must
	// dominate heavily.
	if float64(lowHalf)/n < 0.9 {
		t.Errorf("Zipf not skewed: only %d/%d in low half", lowHalf, n)
	}
}

func TestZipfPanicsOnBadParams(t *testing.T) {
	rng := Source(9)
	assertPanics(t, func() { NewZipf(rng, 1.0, 10, 1) })
	assertPanics(t, func() { NewZipf(rng, 1.3, 1, 1) })
	assertPanics(t, func() { NewZipf(rng, 1.3, 10, 0) })
	assertPanics(t, func() { Uniform(rng, 2, 1) })
	assertPanics(t, func() { UniformInt(rng, 2, 1) })
	assertPanics(t, func() { Normal(rng, 0, 1, 2, 1) })
}

func TestShuffleIsPermutation(t *testing.T) {
	rng := Source(10)
	p := Shuffle(rng, 100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSamplePairsDistinctAndValid(t *testing.T) {
	rng := Source(11)
	for _, k := range []int{0, 1, 10, 45} { // 45 = all pairs of n=10
		pairs := SamplePairs(rng, 10, k)
		if len(pairs) != k {
			t.Fatalf("asked %d pairs, got %d", k, len(pairs))
		}
		seen := make(map[[2]int]bool)
		for _, p := range pairs {
			if p[0] >= p[1] || p[0] < 0 || p[1] >= 10 {
				t.Fatalf("invalid pair %v", p)
			}
			if seen[p] {
				t.Fatalf("duplicate pair %v", p)
			}
			seen[p] = true
		}
	}
}

func TestSamplePairsDensePath(t *testing.T) {
	rng := Source(12)
	// k*3 >= total forces the enumerate-and-shuffle path.
	pairs := SamplePairs(rng, 6, 14) // total = 15
	if len(pairs) != 14 {
		t.Fatalf("got %d pairs", len(pairs))
	}
}

func TestSamplePairsPanicsOnOverflow(t *testing.T) {
	rng := Source(13)
	assertPanics(t, func() { SamplePairs(rng, 4, 7) }) // only 6 pairs exist
	assertPanics(t, func() { SamplePairs(rng, 4, -1) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
