// Package randx provides deterministic random sampling helpers used by the
// synthetic workload generators.
//
// The paper's evaluation (TABLE III) draws attribute values from Uniform,
// Normal, and Zipf laws and capacities from Uniform and Normal laws, always
// converted to integers. All samplers here are driven by an explicit
// *rand.Rand so experiments are reproducible from a single seed.
package randx

import (
	"fmt"
	"math"
	"math/rand"
)

// Source returns a new deterministic PRNG for the given seed.
func Source(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Sub derives an independent child PRNG from parent. Drawing the child seed
// from the parent keeps a whole experiment reproducible from one root seed
// while letting each generated entity consume a private stream.
func Sub(parent *rand.Rand) *rand.Rand {
	return rand.New(rand.NewSource(parent.Int63()))
}

// Uniform samples uniformly from [lo, hi].
func Uniform(rng *rand.Rand, lo, hi float64) float64 {
	if hi < lo {
		panic(fmt.Sprintf("randx: empty range [%v, %v]", lo, hi))
	}
	return lo + rng.Float64()*(hi-lo)
}

// UniformInt samples an integer uniformly from [lo, hi] inclusive.
func UniformInt(rng *rand.Rand, lo, hi int) int {
	if hi < lo {
		panic(fmt.Sprintf("randx: empty range [%d, %d]", lo, hi))
	}
	return lo + rng.Intn(hi-lo+1)
}

// Normal samples from N(mu, sigma²) truncated to [lo, hi] by resampling.
// After a bounded number of attempts it falls back to clamping, so the
// function always terminates even for pathological parameters.
func Normal(rng *rand.Rand, mu, sigma, lo, hi float64) float64 {
	if hi < lo {
		panic(fmt.Sprintf("randx: empty range [%v, %v]", lo, hi))
	}
	for i := 0; i < 64; i++ {
		x := rng.NormFloat64()*sigma + mu
		if x >= lo && x <= hi {
			return x
		}
	}
	x := rng.NormFloat64()*sigma + mu
	return math.Min(hi, math.Max(lo, x))
}

// NormalInt samples Normal(mu, sigma) truncated to [lo, hi] and rounds to the
// nearest integer. The paper converts all generated capacities to integers.
func NormalInt(rng *rand.Rand, mu, sigma float64, lo, hi int) int {
	x := Normal(rng, mu, sigma, float64(lo), float64(hi))
	n := int(math.Round(x))
	if n < lo {
		n = lo
	}
	if n > hi {
		n = hi
	}
	return n
}

// Zipf samples ranks from a Zipf law with exponent s over {0, 1, ..., n-1}
// and maps them onto [0, maxV]. Rank 0 is the most probable value. The
// paper's synthetic attributes use Zipf with exponent 1.3 over [0, T].
type Zipf struct {
	z    *rand.Zipf
	n    uint64
	maxV float64
}

// NewZipf builds a Zipf sampler with exponent s (> 1) over n buckets mapped
// to [0, maxV].
func NewZipf(rng *rand.Rand, s float64, n uint64, maxV float64) *Zipf {
	if s <= 1 {
		panic(fmt.Sprintf("randx: Zipf exponent must be > 1, got %v", s))
	}
	if n < 2 {
		panic(fmt.Sprintf("randx: Zipf needs at least 2 buckets, got %d", n))
	}
	if maxV <= 0 {
		panic(fmt.Sprintf("randx: non-positive Zipf range %v", maxV))
	}
	return &Zipf{
		z:    rand.NewZipf(rng, s, 1, n-1),
		n:    n,
		maxV: maxV,
	}
}

// Next returns the next Zipf-distributed value in [0, maxV].
func (z *Zipf) Next() float64 {
	rank := z.z.Uint64()
	return float64(rank) / float64(z.n-1) * z.maxV
}

// Shuffle permutes the integers [0, n) uniformly at random.
func Shuffle(rng *rand.Rand, n int) []int {
	p := rng.Perm(n)
	return p
}

// SamplePairs draws k distinct unordered pairs {i, j}, i != j, from [0, n)
// uniformly at random. It panics if k exceeds the n·(n-1)/2 available pairs.
// Used to select random conflicting event pairs at a target |CF| density.
func SamplePairs(rng *rand.Rand, n, k int) [][2]int {
	total := n * (n - 1) / 2
	if k < 0 || k > total {
		panic(fmt.Sprintf("randx: cannot sample %d pairs from %d items (%d pairs exist)", k, n, total))
	}
	if k == 0 {
		return nil
	}
	// For sparse requests, rejection-sample into a set; for dense requests,
	// enumerate all pairs and shuffle. The crossover keeps both paths fast.
	if k*3 < total {
		seen := make(map[[2]int]struct{}, k)
		out := make([][2]int, 0, k)
		for len(out) < k {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			if i > j {
				i, j = j, i
			}
			key := [2]int{i, j}
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			out = append(out, key)
		}
		return out
	}
	all := make([][2]int, 0, total)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			all = append(all, [2]int{i, j})
		}
	}
	rng.Shuffle(len(all), func(a, b int) { all[a], all[b] = all[b], all[a] })
	return all[:k]
}
