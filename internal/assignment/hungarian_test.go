package assignment

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnownSquare(t *testing.T) {
	// Classic 3x3: optimal picks 9 + 8 + 7 on the anti-diagonal pattern.
	weights := [][]float64{
		{1, 2, 9},
		{8, 4, 3},
		{5, 7, 6},
	}
	match, total, err := Solve(weights)
	if err != nil {
		t.Fatal(err)
	}
	if total != 24 {
		t.Fatalf("total = %v, want 24", total)
	}
	want := []int{2, 0, 1}
	for i, w := range want {
		if match[i] != w {
			t.Fatalf("match = %v, want %v", match, want)
		}
	}
}

func TestSolveRectangular(t *testing.T) {
	// More rows than columns: one row stays unmatched.
	weights := [][]float64{
		{5, 1},
		{6, 2},
		{7, 8},
	}
	match, total, err := Solve(weights)
	if err != nil {
		t.Fatal(err)
	}
	if total != 14 { // 6 (row1->col0) + 8 (row2->col1)
		t.Fatalf("total = %v, want 14", total)
	}
	if match[0] != -1 || match[1] != 0 || match[2] != 1 {
		t.Fatalf("match = %v", match)
	}

	// More columns than rows.
	weights = [][]float64{{1, 9, 3}}
	match, total, err = Solve(weights)
	if err != nil {
		t.Fatal(err)
	}
	if total != 9 || match[0] != 1 {
		t.Fatalf("match = %v total = %v", match, total)
	}
}

func TestSolveZeroWeightsUnmatched(t *testing.T) {
	weights := [][]float64{
		{0, 0},
		{0, 0.5},
	}
	match, total, err := Solve(weights)
	if err != nil {
		t.Fatal(err)
	}
	if total != 0.5 {
		t.Fatalf("total = %v", total)
	}
	if match[0] != -1 || match[1] != 1 {
		t.Fatalf("match = %v: zero-weight pairs must stay unmatched", match)
	}
}

func TestSolveEmptyAndErrors(t *testing.T) {
	if m, total, err := Solve(nil); err != nil || m != nil || total != 0 {
		t.Error("empty problem mishandled")
	}
	if _, _, err := Solve([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, _, err := Solve([][]float64{{-1}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, _, err := Solve([][]float64{{math.NaN()}}); err == nil {
		t.Error("NaN weight accepted")
	}
}

// bruteMaxMatching enumerates all row->column injections.
func bruteMaxMatching(weights [][]float64) float64 {
	nc := 0
	if len(weights) > 0 {
		nc = len(weights[0])
	}
	usedCols := make([]bool, nc)
	var rec func(r int) float64
	rec = func(r int) float64 {
		if r == len(weights) {
			return 0
		}
		best := rec(r + 1) // leave row r unmatched
		for c := 0; c < nc; c++ {
			if usedCols[c] || weights[r][c] == 0 {
				continue
			}
			usedCols[c] = true
			if got := weights[r][c] + rec(r+1); got > best {
				best = got
			}
			usedCols[c] = false
		}
		return best
	}
	return rec(0)
}

func TestSolveMatchesBruteForceProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nr, nc := 1+rng.Intn(6), 1+rng.Intn(6)
		weights := make([][]float64, nr)
		for r := range weights {
			weights[r] = make([]float64, nc)
			for c := range weights[r] {
				if rng.Float64() < 0.2 {
					continue // leave a zero
				}
				weights[r][c] = math.Round(rng.Float64()*100) / 100
			}
		}
		match, total, err := Solve(weights)
		if err != nil {
			return false
		}
		// Validity: injective, weights positive.
		seen := make(map[int]bool)
		var check float64
		for r, c := range match {
			if c == -1 {
				continue
			}
			if seen[c] || weights[r][c] <= 0 {
				return false
			}
			seen[c] = true
			check += weights[r][c]
		}
		if math.Abs(check-total) > 1e-9 {
			return false
		}
		return math.Abs(total-bruteMaxMatching(weights)) <= 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSolveLargeUniqueOptimum(t *testing.T) {
	// Diagonal-dominant matrix: the identity matching is forced.
	const n = 50
	weights := make([][]float64, n)
	for i := range weights {
		weights[i] = make([]float64, n)
		for j := range weights[i] {
			weights[i][j] = 0.1
			if i == j {
				weights[i][j] = 1
			}
		}
	}
	match, total, err := Solve(weights)
	if err != nil {
		t.Fatal(err)
	}
	if total != n {
		t.Fatalf("total = %v, want %d", total, n)
	}
	for i, c := range match {
		if c != i {
			t.Fatalf("match[%d] = %d", i, c)
		}
	}
}
