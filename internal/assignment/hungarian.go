// Package assignment implements the classical maximum-weight bipartite
// matching (assignment) problem via the Hungarian algorithm (Kuhn-Munkres,
// in the O(n³) shortest-augmenting-path formulation).
//
// The paper situates GEACC relative to this problem: with all capacities
// one and no conflicts, GEACC *is* maximum-weight bipartite matching
// (Section II). The package exists as an independently-implemented oracle:
// tests cross-validate MinCostFlow-GEACC's reduction against it on that
// special case, and it is useful in its own right for one-shot pairings.
package assignment

import (
	"fmt"
	"math"
)

// Solve computes a maximum-weight matching of rows to columns given a
// weight matrix (rows × cols, non-negative weights; zero weight means "do
// not match"). It returns, for each row, the matched column or -1, plus the
// total weight. Rows and columns are matched at most once.
//
// The implementation pads the rectangular problem to a square one with
// zero-weight cells, runs min-cost assignment on negated weights with the
// Jonker-Volgenant style potentials, and drops zero-weight pairs from the
// result.
func Solve(weights [][]float64) (rowMatch []int, total float64, err error) {
	nr := len(weights)
	if nr == 0 {
		return nil, 0, nil
	}
	nc := len(weights[0])
	for r, row := range weights {
		if len(row) != nc {
			return nil, 0, fmt.Errorf("assignment: row %d has %d columns, want %d", r, len(row), nc)
		}
		for c, w := range row {
			if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
				return nil, 0, fmt.Errorf("assignment: weight (%d, %d) = %v invalid", r, c, w)
			}
		}
	}
	n := nr
	if nc > n {
		n = nc
	}
	// cost[i][j] = -weight (padded); we minimize cost = maximize weight.
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i < nr && j < nc {
				cost[i][j] = -weights[i][j]
			}
		}
	}

	// Jonker-Volgenant / Hungarian with row-by-row augmentation. Arrays are
	// 1-indexed internally (position 0 is the virtual root).
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1) // p[j] = row matched to column j
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := 0; j <= n; j++ {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowMatch = make([]int, nr)
	for i := range rowMatch {
		rowMatch[i] = -1
	}
	for j := 1; j <= n; j++ {
		i := p[j]
		if i == 0 || i > nr || j > nc {
			continue
		}
		if w := weights[i-1][j-1]; w > 0 {
			rowMatch[i-1] = j - 1
			total += w
		}
	}
	return rowMatch, total, nil
}
