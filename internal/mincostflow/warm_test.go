package mincostflow

import (
	"math"
	"math/rand"
	"testing"
)

func TestPushFlowAndClearFlow(t *testing.T) {
	g := NewGraph(3)
	a := g.AddArc(0, 1, 2, 0.5)
	b := g.AddArc(1, 2, 1, 0.25)
	if !g.PushFlow(a, 2) || !g.PushFlow(b, 1) {
		t.Fatal("PushFlow rejected pushes within capacity")
	}
	if g.Flow(a) != 2 || g.Flow(b) != 1 {
		t.Fatalf("flows after push: %d, %d", g.Flow(a), g.Flow(b))
	}
	if g.PushFlow(a, 1) {
		t.Fatal("PushFlow exceeded capacity")
	}
	if g.PushFlow(a, 0) || g.PushFlow(a, -1) {
		t.Fatal("PushFlow accepted non-positive units")
	}
	g.ClearFlow()
	if g.Flow(a) != 0 || g.Flow(b) != 0 {
		t.Fatalf("flows after ClearFlow: %d, %d", g.Flow(a), g.Flow(b))
	}
	if g.cap[int32(a)] != 2 || g.cap[int32(b)] != 1 {
		t.Fatal("ClearFlow did not restore capacities")
	}
}

// TestWarmStartRepairsNegativeCycle restores a flow that the delta made
// suboptimal: a new event v3 offers a much cheaper assignment into a
// saturated user, forming a negative-cost residual cycle through the
// restored flow. WarmStart must cancel it and land on the true optimum.
func TestWarmStartRepairsNegativeCycle(t *testing.T) {
	// s=0, v1=1, v2=2, v3=3, u1=4, t=5. Previous solve (without v3) had
	// both v1 and v2 assigned to u1 (cap 2).
	g := NewGraph(6)
	sv1 := g.AddArc(0, 1, 1, 0)
	sv2 := g.AddArc(0, 2, 1, 0)
	g.AddArc(0, 3, 1, 0)
	p1 := g.AddArc(1, 4, 1, 0.40)
	p2 := g.AddArc(2, 4, 1, 0.45)
	p3 := g.AddArc(3, 4, 1, 0.10)
	ut := g.AddArc(4, 5, 2, 0)
	for _, id := range []ArcID{sv1, p1, sv2, p2} {
		if !g.PushFlow(id, 1) {
			t.Fatal("restore push failed")
		}
	}
	if !g.PushFlow(ut, 2) {
		t.Fatal("restore push failed")
	}
	sv := NewSolver(g, 0, 5)
	st := sv.WarmStart(g, 0, 5, nil)
	if !st.OK {
		t.Fatal("WarmStart did not converge")
	}
	if st.CyclesCanceled == 0 {
		t.Fatal("expected at least one negative cycle canceled")
	}
	if st.RestoredFlow != 2 {
		t.Fatalf("restored flow = %d, want 2", st.RestoredFlow)
	}
	if math.Abs(sv.TotalCost()-0.50) > 1e-12 {
		t.Fatalf("repaired cost = %v, want 0.50", sv.TotalCost())
	}
	if g.Flow(p1) != 1 || g.Flow(p2) != 0 || g.Flow(p3) != 1 {
		t.Fatalf("repaired support wrong: p1=%d p2=%d p3=%d",
			g.Flow(p1), g.Flow(p2), g.Flow(p3))
	}
	// Nothing further to push below bound 1: v2's path costs 0.45 < 1, so
	// one more unit is still profitable (u1 has no capacity left though).
	if _, _, ok := sv.AugmentBelow(math.MaxInt64, 1); ok {
		t.Fatal("no augmenting path should remain")
	}
}

// bipartite test fixture: s=0, events 1..nv, users nv+1..nv+nu, t=nv+nu+1,
// with the GEACC cost shape (source/sink arcs cost 0, pair arcs in (0,1)).
type warmNet struct {
	nv, nu   int
	userCap  []int64
	cost     [][]float64 // cost[v][u] < 0 means the pair arc is absent
	pairArcs [][]ArcID
	srcArcs  []ArcID
}

func (w *warmNet) build() (*Graph, int, int) {
	s, t := 0, w.nv+w.nu+1
	g := NewGraph(w.nv + w.nu + 2)
	w.srcArcs = make([]ArcID, w.nv)
	for v := 0; v < w.nv; v++ {
		w.srcArcs[v] = g.AddArc(s, 1+v, 1, 0)
	}
	for u := 0; u < w.nu; u++ {
		g.AddArc(1+w.nv+u, t, w.userCap[u], 0)
	}
	w.pairArcs = make([][]ArcID, w.nv)
	for v := 0; v < w.nv; v++ {
		w.pairArcs[v] = make([]ArcID, w.nu)
		for u := 0; u < w.nu; u++ {
			w.pairArcs[v][u] = -1
			if w.cost[v][u] >= 0 {
				w.pairArcs[v][u] = g.AddArc(1+v, 1+w.nv+u, 1, w.cost[v][u])
			}
		}
	}
	return g, s, t
}

func solveGEACC(g *Graph, sv *Solver) {
	for {
		if _, _, ok := sv.AugmentBelow(math.MaxInt64, 1); !ok {
			return
		}
	}
}

// TestWarmMatchesColdRandomDeltas runs random delta streams: solve cold,
// perturb the network (new users, changed costs, removed events), restore
// the surviving flow, warm-start, retreat+augment, and check the result is
// the same flow the cold path finds on the perturbed network.
func TestWarmMatchesColdRandomDeltas(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 120; trial++ {
		nv, nu := 2+rng.Intn(6), 2+rng.Intn(8)
		w := &warmNet{nv: nv, nu: nu, userCap: make([]int64, nu), cost: make([][]float64, nv)}
		for u := range w.userCap {
			w.userCap[u] = int64(1 + rng.Intn(3))
		}
		for v := range w.cost {
			w.cost[v] = make([]float64, nu)
			for u := range w.cost[v] {
				w.cost[v][u] = rng.Float64() // in (0,1): all pairs present
			}
		}
		g0, s0, t0 := w.build()
		sv0 := NewSolver(g0, s0, t0)
		solveGEACC(g0, sv0)
		prevPot := sv0.Potentials(nil)
		type pair struct{ v, u int }
		var prevFlow []pair
		for v := 0; v < nv; v++ {
			for u := 0; u < nu; u++ {
				if g0.Flow(w.pairArcs[v][u]) == 1 {
					prevFlow = append(prevFlow, pair{v, u})
				}
			}
		}

		// Delta: perturb a few costs, add a user, maybe drop an event
		// (simulated by zeroing its pair arcs out of the new network).
		w2 := &warmNet{nv: nv, nu: nu + 1, userCap: append(append([]int64{}, w.userCap...), int64(1+rng.Intn(2)))}
		dropped := -1
		if rng.Intn(3) == 0 {
			dropped = rng.Intn(nv)
		}
		w2.cost = make([][]float64, nv)
		for v := 0; v < nv; v++ {
			w2.cost[v] = make([]float64, nu+1)
			for u := 0; u <= nu; u++ {
				switch {
				case v == dropped:
					w2.cost[v][u] = -1 // event gone: no arcs
				case u == nu || rng.Intn(10) == 0:
					w2.cost[v][u] = rng.Float64()
				default:
					w2.cost[v][u] = w.cost[v][u]
				}
			}
		}

		// Cold reference on the perturbed network.
		gc, sc, tc := (&warmNet{nv: w2.nv, nu: w2.nu, userCap: w2.userCap, cost: w2.cost}).build()
		svc := NewSolver(gc, sc, tc)
		solveGEACC(gc, svc)

		// Warm path: restore surviving flow where cost is unchanged.
		gw, sw, tw := w2.build()
		for _, p := range prevFlow {
			if p.v == dropped || w2.cost[p.v][p.u] != w.cost[p.v][p.u] {
				continue
			}
			srcA, pairA := w2.srcArcs[p.v], w2.pairArcs[p.v][p.u]
			sinkA := ArcID(2 * (w2.nv + p.u)) // user arcs added in u order after source arcs
			if gw.cap[int32(srcA)] > 0 && gw.cap[int32(pairA)] > 0 && gw.cap[int32(sinkA)] > 0 {
				gw.PushFlow(srcA, 1)
				gw.PushFlow(pairA, 1)
				gw.PushFlow(sinkA, 1)
			}
		}
		// Remap potentials: users shifted by zero (same indices), but t
		// moved from nv+nu+1 to nv+nu+2 and the new user has none.
		potInit := make([]float64, w2.nv+w2.nu+2)
		copy(potInit[:1+nv+nu], prevPot[:1+nv+nu])
		potInit[w2.nv+w2.nu+1] = prevPot[nv+nu+1]
		svw := NewSolver(gw, sw, tw)
		st := svw.WarmStart(gw, sw, tw, potInit)
		if !st.OK {
			t.Fatalf("trial %d: WarmStart failed to converge", trial)
		}
		for {
			if _, ok := svw.RetreatAbove(1); !ok {
				break
			}
		}
		solveGEACC(gw, svw)

		if svw.TotalFlow() != svc.TotalFlow() {
			t.Fatalf("trial %d: warm flow %d != cold flow %d", trial, svw.TotalFlow(), svc.TotalFlow())
		}
		if math.Abs(svw.TotalCost()-svc.TotalCost()) > 1e-9 {
			t.Fatalf("trial %d: warm cost %v != cold cost %v", trial, svw.TotalCost(), svc.TotalCost())
		}
		for v := 0; v < w2.nv; v++ {
			for u := 0; u < w2.nu; u++ {
				wa := w2.pairArcs[v][u]
				if wa < 0 {
					continue
				}
				if gw.Flow(wa) != gc.Flow(wa) {
					t.Fatalf("trial %d: pair (%d,%d) warm flow %d != cold %d",
						trial, v, u, gw.Flow(wa), gc.Flow(wa))
				}
			}
		}
	}
}
