package mincostflow

import (
	"math"

	"github.com/ebsnlab/geacc/internal/pqueue"
)

// Warm-started SSPA. A dirty-component rebalance re-solves a network that
// differs from the previous solve by a handful of arcs. Instead of starting
// from zero flow and zero potentials, the caller rebuilds the (slightly
// changed) network, force-restores the surviving flow units with PushFlow,
// and calls WarmStart: it repairs optimality (the delta may have created
// negative-cost residual cycles through the restored flow), recovers valid
// node potentials seeded from the previous solve, and leaves the Solver
// ready for the usual Augment/AugmentBelow loop — which now only has the
// delta's marginal units left to push instead of the whole flow.
//
// RetreatAbove is the reverse move: when a delta removed capacity or made
// restored units unprofitable under the caller's stopping rule, it pops
// single units back from sink to source along cheapest residual paths.

// PushFlow forces units of flow onto the arc if its residual capacity
// allows, returning whether the push happened. This bypasses path search
// entirely — it is the restore primitive for warm starts and may leave the
// flow non-optimal until WarmStart repairs it.
func (g *Graph) PushFlow(id ArcID, units int64) bool {
	a := int32(id)
	if units <= 0 || int(a) < 0 || int(a) >= len(g.cap) {
		return false
	}
	if g.cap[a] < units {
		return false
	}
	g.cap[a] -= units
	g.cap[a^1] += units
	return true
}

// Residual returns the arc's remaining (unused) capacity. Callers restoring
// flow use it to check all three arcs of a unit path before pushing.
func (g *Graph) Residual(id ArcID) int64 { return g.cap[int32(id)] }

// ClearFlow removes all flow from the network, returning every forward arc
// to its original capacity. It is the cold-fallback escape hatch when a
// warm start cannot be repaired.
func (g *Graph) ClearFlow() {
	for a := 0; a+1 < len(g.cap); a += 2 {
		g.cap[a] += g.cap[a+1]
		g.cap[a+1] = 0
	}
}

// Potentials appends nothing and copies the solver's current node
// potentials into out (grown as needed), returning the slice. Valid after a
// solve; feed it to a later WarmStart on a related network.
func (sv *Solver) Potentials(out []float64) []float64 {
	out = resizeFloats(out, len(sv.pot))
	copy(out, sv.pot)
	return out
}

// WarmStats reports what a WarmStart did.
type WarmStats struct {
	RestoredFlow   int64 // flow units found on the network at start
	CyclesCanceled int   // negative residual cycles repaired
	OK             bool  // false: caller must ClearFlow + Reset and go cold
}

// WarmStart prepares the Solver for an SSPA run on a network that already
// carries flow (restored via PushFlow). It
//
//  1. cancels any negative-cost residual cycles the restored flow forms
//     with the delta's new arcs, re-establishing that the current flow is a
//     minimum-cost flow of its amount;
//  2. recomputes TotalFlow/TotalCost from the arc flows; and
//  3. recovers valid node potentials (all residual reduced costs
//     non-negative) by Bellman-Ford relaxation seeded from prevPot — nodes
//     beyond len(prevPot) start at zero. Seeding from the previous solve's
//     potentials makes the relaxation converge in a pass or two on small
//     deltas instead of the cold pass over the whole network.
//
// On success the Solver behaves exactly as if Augment had pushed the
// restored flow itself: successive Augment/AugmentBelow calls yield
// non-decreasing unit costs and bit-exact optima. OK=false means repair did
// not converge (pathological float noise); the caller should ClearFlow,
// Reset, and solve cold.
func (sv *Solver) WarmStart(g *Graph, s, t int, prevPot []float64) WarmStats {
	if s < 0 || s >= g.numNodes || t < 0 || t >= g.numNodes || s == t {
		panic("mincostflow: invalid terminals in WarmStart")
	}
	n := g.numNodes
	sv.g, sv.s, sv.t = g, s, t
	sv.dist = resizeFloats(sv.dist, n)
	sv.prev = resizeInt32s(sv.prev, n)
	if sv.heap == nil {
		sv.heap = pqueue.NewIndexedMinHeap(n)
	} else {
		sv.heap.Resize(n)
	}

	st := WarmStats{}
	// Repair optimality: the restored flow plus delta arcs may admit
	// negative-cost residual cycles; cancel until none remain. The bound is
	// generous — a small delta creates at most a few — and overrunning it
	// signals a pathological instance better served cold.
	maxCancel := n + 64
	for st.CyclesCanceled < maxCancel {
		cycle := findNegativeCycle(g)
		if cycle == nil {
			break
		}
		bottleneck := int64(math.MaxInt64)
		for _, a := range cycle {
			if g.cap[a] < bottleneck {
				bottleneck = g.cap[a]
			}
		}
		for _, a := range cycle {
			g.cap[a] -= bottleneck
			g.cap[int32(a)^1] += bottleneck
		}
		st.CyclesCanceled++
	}
	if st.CyclesCanceled >= maxCancel {
		return st // OK=false: cancelation did not converge
	}

	// Recompute totals from arc flows. Net flow out of s: forward arcs in
	// s's adjacency carry flow out, residual twins in s's adjacency mean
	// their forward arc carries flow in.
	sv.totalFlow = 0
	sv.totalCost = 0
	for a := g.head[s]; a >= 0; a = g.next[a] {
		if a%2 == 0 {
			sv.totalFlow += g.Flow(ArcID(a))
		} else {
			sv.totalFlow -= g.cap[a]
		}
	}
	for a := 0; a+1 < len(g.cost); a += 2 {
		if f := g.cap[a+1]; f > 0 {
			sv.totalCost += float64(f) * g.cost[a]
		}
	}
	st.RestoredFlow = sv.totalFlow

	// Recover valid potentials: relax pot[w] <= pot[v] + cost(v,w) over
	// every positive-capacity residual arc, seeded from the previous
	// solve's potentials. Absent negative cycles (just canceled) this is a
	// difference-constraint system; relaxation converges in at most n
	// passes, and with a good seed typically one or two.
	sv.pot = resizeFloats(sv.pot, n)
	for i := range sv.pot {
		if i < len(prevPot) {
			sv.pot[i] = prevPot[i]
		} else {
			sv.pot[i] = 0
		}
	}
	converged := false
	for iter := 0; iter < n+1; iter++ {
		changed := false
		for v := 0; v < n; v++ {
			for a := g.head[v]; a >= 0; a = g.next[a] {
				if g.cap[a] <= 0 {
					continue
				}
				if nd := sv.pot[v] + g.cost[a]; nd < sv.pot[g.to[a]] {
					sv.pot[g.to[a]] = nd
					changed = true
				}
			}
		}
		if !changed {
			converged = true
			break
		}
	}
	st.OK = converged
	return st
}

// RetreatAbove pops one unit of flow back from sink to source along the
// cheapest residual t->s path when undoing that unit recovers at least
// costBound — i.e. the marginal unit currently in the flow costs >= the
// caller's stopping bound and would never have been pushed by
// AugmentBelow(..., costBound) on a cold run. ok=false means no unit
// qualifies (or no flow remains) and the retreat phase is done.
//
// Requires valid potentials (after WarmStart or previous solver calls);
// like Augment it updates potentials so future reduced costs stay
// non-negative.
func (sv *Solver) RetreatAbove(costBound float64) (unitCost float64, ok bool) {
	if sv.totalFlow <= 0 {
		return 0, false
	}
	if !sv.dijkstraFrom(sv.t, sv.s) {
		return 0, false
	}
	// True cost of sending one unit t->s; undoing a forward unit "refunds"
	// -reverseCost, so retreat while reverseCost <= -costBound.
	reverseCost := sv.dist[sv.s] + sv.pot[sv.s] - sv.pot[sv.t]
	if reverseCost > -costBound {
		return reverseCost, false
	}
	g := sv.g
	for v := 0; v < g.numNodes; v++ {
		if sv.dist[v] == math.MaxFloat64 {
			sv.pot[v] += sv.dist[sv.s]
		} else {
			sv.pot[v] += sv.dist[v]
		}
	}
	for v := sv.s; v != sv.t; {
		a := sv.prev[v]
		g.cap[a] -= 1
		g.cap[int32(a)^1] += 1
		v = int(g.to[int32(a)^1])
	}
	sv.totalFlow--
	sv.totalCost += reverseCost
	return reverseCost, true
}
