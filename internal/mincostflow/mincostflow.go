package mincostflow

import (
	"fmt"
	"math"

	"github.com/ebsnlab/geacc/internal/pqueue"
)

// Graph is a flow network under construction. Arcs are stored as
// forward/residual twins: arc i's twin is i^1.
type Graph struct {
	numNodes int
	to       []int32
	next     []int32
	head     []int32
	cap      []int64
	cost     []float64
}

// ArcID identifies an arc returned by AddArc.
type ArcID int32

// NewGraph returns an empty network with n nodes labeled 0..n-1.
func NewGraph(n int) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("mincostflow: non-positive node count %d", n))
	}
	head := make([]int32, n)
	for i := range head {
		head[i] = -1
	}
	return &Graph{numNodes: n, head: head}
}

// NumNodes returns the number of nodes in the network.
func (g *Graph) NumNodes() int { return g.numNodes }

// NumArcs returns the number of forward arcs added so far.
func (g *Graph) NumArcs() int { return len(g.to) / 2 }

// Grow pre-allocates storage for n additional forward arcs.
func (g *Graph) Grow(n int) {
	g.to = append(make([]int32, 0, len(g.to)+2*n), g.to...)
	g.next = append(make([]int32, 0, len(g.next)+2*n), g.next...)
	g.cap = append(make([]int64, 0, len(g.cap)+2*n), g.cap...)
	g.cost = append(make([]float64, 0, len(g.cost)+2*n), g.cost...)
}

// AddArc adds a directed arc from -> to with the given capacity and per-unit
// cost, returning its id. Capacities must be non-negative and costs finite.
func (g *Graph) AddArc(from, to int, capacity int64, cost float64) ArcID {
	if from < 0 || from >= g.numNodes || to < 0 || to >= g.numNodes {
		panic(fmt.Sprintf("mincostflow: arc (%d -> %d) out of range [0, %d)", from, to, g.numNodes))
	}
	if capacity < 0 {
		panic(fmt.Sprintf("mincostflow: negative capacity %d", capacity))
	}
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		panic(fmt.Sprintf("mincostflow: non-finite cost %v", cost))
	}
	id := ArcID(len(g.to))
	g.pushArc(from, int32(to), capacity, cost)
	g.pushArc(to, int32(from), 0, -cost)
	return id
}

func (g *Graph) pushArc(from int, to int32, capacity int64, cost float64) {
	g.to = append(g.to, to)
	g.next = append(g.next, g.head[from])
	g.head[from] = int32(len(g.to) - 1)
	g.cap = append(g.cap, capacity)
	g.cost = append(g.cost, cost)
}

// Flow returns the amount of flow currently on the arc. Valid after solving.
func (g *Graph) Flow(id ArcID) int64 {
	// Residual capacity accumulated on the twin equals the flow pushed.
	return g.cap[int32(id)^1]
}

// Solver runs SSPA on a graph. A Solver mutates the graph's residual
// capacities; build a fresh Graph (or Solver) per solve.
type Solver struct {
	g    *Graph
	s, t int
	pot  []float64
	dist []float64
	prev []int32 // arc used to reach each node on the current shortest path
	heap *pqueue.IndexedMinHeap

	totalFlow int64
	totalCost float64
}

// NewSolver prepares an SSPA run from source s to sink t. If the graph
// contains negative-cost arcs, initial potentials are computed with one
// Bellman–Ford pass; otherwise zero potentials are already valid (the GEACC
// reduction has only costs in [0, 1]).
func NewSolver(g *Graph, s, t int) *Solver {
	if s < 0 || s >= g.numNodes || t < 0 || t >= g.numNodes || s == t {
		panic(fmt.Sprintf("mincostflow: invalid terminals s=%d t=%d (n=%d)", s, t, g.numNodes))
	}
	sv := &Solver{}
	sv.Reset(g, s, t)
	return sv
}

// bellmanFordPotentials sets pot to shortest-path distances from s over
// positive-capacity arcs, making all reduced costs non-negative.
func (sv *Solver) bellmanFordPotentials() {
	g := sv.g
	const inf = math.MaxFloat64
	for i := range sv.pot {
		sv.pot[i] = inf
	}
	sv.pot[sv.s] = 0
	for iter := 0; iter < g.numNodes; iter++ {
		changed := false
		for from := 0; from < g.numNodes; from++ {
			if sv.pot[from] == inf {
				continue
			}
			for a := g.head[from]; a >= 0; a = g.next[a] {
				if g.cap[a] <= 0 {
					continue
				}
				if nd := sv.pot[from] + g.cost[a]; nd < sv.pot[g.to[a]] {
					sv.pot[g.to[a]] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	// Nodes unreachable from s can keep any finite potential; zero is fine
	// because they will never lie on an augmenting path.
	for i := range sv.pot {
		if sv.pot[i] == inf {
			sv.pot[i] = 0
		}
	}
}

// TotalFlow returns the amount of flow pushed so far.
func (sv *Solver) TotalFlow() int64 { return sv.totalFlow }

// TotalCost returns the cost of the flow pushed so far.
func (sv *Solver) TotalCost() float64 { return sv.totalCost }

// Augment finds a shortest (minimum-cost) augmenting path in the residual
// network and pushes along it up to maxUnits of flow (capped by the path's
// bottleneck). It returns the units pushed and the per-unit path cost.
// ok is false when the sink is no longer reachable; nothing is pushed then.
//
// Successive calls yield non-decreasing unitCost, and after each call the
// current flow is a minimum-cost flow of amount TotalFlow().
func (sv *Solver) Augment(maxUnits int64) (units int64, unitCost float64, ok bool) {
	if maxUnits <= 0 {
		return 0, 0, false
	}
	if !sv.dijkstra() {
		return 0, 0, false
	}
	// True path cost: reduced distance plus potential difference (computed
	// before the potential update inside pushAlongPath).
	unitCost = sv.dist[sv.t] + sv.pot[sv.t] - sv.pot[sv.s]
	units = sv.pushAlongPath(maxUnits, unitCost)
	return units, unitCost, true
}

// pushAlongPath updates potentials from the last Dijkstra run and pushes up
// to maxUnits along the recorded shortest path, returning the units pushed.
func (sv *Solver) pushAlongPath(maxUnits int64, unitCost float64) int64 {
	g := sv.g
	// Update potentials so future reduced costs stay non-negative.
	for v := 0; v < g.numNodes; v++ {
		if sv.dist[v] == math.MaxFloat64 {
			sv.pot[v] += sv.dist[sv.t]
		} else {
			sv.pot[v] += sv.dist[v]
		}
	}
	// Bottleneck along the recorded path.
	bottleneck := maxUnits
	for v := sv.t; v != sv.s; {
		a := sv.prev[v]
		if g.cap[a] < bottleneck {
			bottleneck = g.cap[a]
		}
		v = int(g.to[int32(a)^1])
	}
	// Push.
	for v := sv.t; v != sv.s; {
		a := sv.prev[v]
		g.cap[a] -= bottleneck
		g.cap[int32(a)^1] += bottleneck
		v = int(g.to[int32(a)^1])
	}
	sv.totalFlow += bottleneck
	sv.totalCost += float64(bottleneck) * unitCost
	return bottleneck
}

// dijkstra computes reduced-cost shortest paths from s, filling dist and
// prev. It reports whether t is reachable.
func (sv *Solver) dijkstra() bool { return sv.dijkstraFrom(sv.s, sv.t) }

// dijkstraFrom computes reduced-cost shortest paths from src, filling dist
// and prev. It reports whether dst is reachable. The warm-start retreat
// phase roots it at the sink; everything else roots it at the source.
func (sv *Solver) dijkstraFrom(src, dst int) bool {
	g := sv.g
	for i := range sv.dist {
		sv.dist[i] = math.MaxFloat64
		sv.prev[i] = -1
	}
	sv.heap.Reset()
	sv.dist[src] = 0
	sv.heap.Push(src, 0)
	for sv.heap.Len() > 0 {
		v, d := sv.heap.Pop()
		if d > sv.dist[v] {
			continue
		}
		for a := g.head[v]; a >= 0; a = g.next[a] {
			if g.cap[a] <= 0 {
				continue
			}
			w := int(g.to[a])
			rc := g.cost[a] + sv.pot[v] - sv.pot[w]
			if rc < 0 {
				// Floating-point drift can push a reduced cost epsilon
				// below zero; clamp so Dijkstra's invariant holds.
				rc = 0
			}
			if nd := d + rc; nd < sv.dist[w] {
				sv.dist[w] = nd
				sv.prev[w] = a
				sv.heap.Push(w, nd)
			}
		}
	}
	return sv.dist[dst] != math.MaxFloat64
}

// AugmentBelow is like Augment but pushes only when the shortest augmenting
// path's per-unit cost is strictly below costBound; otherwise it pushes
// nothing and returns ok = false with the cost that was rejected. Because
// successive path costs never decrease, a false return means no further
// augmentation can beat the bound either.
func (sv *Solver) AugmentBelow(maxUnits int64, costBound float64) (units int64, unitCost float64, ok bool) {
	if maxUnits <= 0 {
		return 0, 0, false
	}
	if !sv.dijkstra() {
		return 0, 0, false
	}
	unitCost = sv.dist[sv.t] + sv.pot[sv.t] - sv.pot[sv.s]
	if unitCost >= costBound {
		return 0, unitCost, false
	}
	units = sv.pushAlongPath(maxUnits, unitCost)
	return units, unitCost, true
}

// MinCostFlow pushes up to target units of flow at minimum cost, returning
// the flow achieved and its cost. Use target = math.MaxInt64 for min-cost
// max-flow.
func (sv *Solver) MinCostFlow(target int64) (flow int64, cost float64) {
	for sv.totalFlow < target {
		if _, _, ok := sv.Augment(target - sv.totalFlow); !ok {
			break
		}
	}
	return sv.totalFlow, sv.totalCost
}
