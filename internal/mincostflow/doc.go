// Package mincostflow implements a minimum-cost flow solver on directed
// networks with integer capacities and real-valued arc costs.
//
// MinCostFlow-GEACC (Algorithm 1 of the paper) reduces the conflict-free
// GEACC instance to min-cost flow and computes minimum-cost flows of every
// amount Δ ∈ [Δmin, Δmax]. The solver here is the Successive Shortest Path
// Algorithm (SSPA) — the variant the paper (citing SIGMOD'08) recommends
// for large-scale many-to-many matching with real-valued costs — with
// Dijkstra over reduced costs and node potentials. Because SSPA augments
// along shortest paths, the flow after the k-th unit of augmentation is
// itself a minimum-cost flow of amount k, so a single run yields the whole
// Δ-sweep.
//
// # API
//
// Build a network with NewGraph and AddArc (arcs are stored as
// forward/residual twins; AddArc returns an ArcID whose post-solve flow is
// read back with Graph.Flow). Grow pre-allocates arc storage when the arc
// count is known. A Solver is bound to one source/sink pair by NewSolver
// and mutates the graph's residual capacities; build a fresh Graph (or
// Solver) per solve.
//
// Three driving styles, all built on the same augmentation step:
//
//   - Solver.MinCostFlow(target): push up to target units at minimum cost
//     (math.MaxInt64 for min-cost max-flow).
//   - Solver.Augment(maxUnits): one shortest augmenting path at a time;
//     successive calls yield non-decreasing per-unit costs, and after each
//     call the current flow is a minimum-cost flow of amount TotalFlow().
//   - Solver.AugmentBelow(maxUnits, bound): augment only while the next
//     path's per-unit cost stays below bound — the primitive
//     internal/core's Δ-sweep uses to stop at the MaxSum-optimal Δ, and
//     the natural place callers poll for cancellation (internal/core does,
//     between calls).
//
// Costs may be negative as long as the graph admits no negative cycle:
// NewSolver runs one Bellman–Ford pass to compute valid initial potentials
// when a negative-cost arc is present (the GEACC reduction's costs lie in
// [0, 1], so it skips this).
//
// The package also ships a cycle-canceling solver (cyclecancel.go) used as
// a cross-checking ablation in tests and benchmarks; SSPA is the
// production path.
package mincostflow
