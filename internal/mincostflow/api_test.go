package mincostflow

import (
	"math"
	"testing"
)

func TestGraphAccessors(t *testing.T) {
	g := NewGraph(3)
	if g.NumNodes() != 3 || g.NumArcs() != 0 {
		t.Fatalf("fresh graph: nodes=%d arcs=%d", g.NumNodes(), g.NumArcs())
	}
	g.Grow(10)
	g.AddArc(0, 1, 2, 0.5)
	g.AddArc(1, 2, 1, 0.25)
	if g.NumArcs() != 2 {
		t.Fatalf("NumArcs = %d", g.NumArcs())
	}
	// Grow must preserve existing arcs.
	sv := NewSolver(g, 0, 2)
	flow, cost := sv.MinCostFlow(math.MaxInt64)
	if flow != 1 || math.Abs(cost-0.75) > 1e-12 {
		t.Fatalf("flow=%d cost=%v after Grow", flow, cost)
	}
	if sv.TotalFlow() != 1 || math.Abs(sv.TotalCost()-0.75) > 1e-12 {
		t.Fatalf("totals = %d, %v", sv.TotalFlow(), sv.TotalCost())
	}
}

func TestAugmentBelowStopsAtBound(t *testing.T) {
	// Two unit paths: costs 0.4 and 0.9. With bound 0.5 only the cheap one
	// is taken; a second call reports the rejected cost.
	g := NewGraph(4)
	g.AddArc(0, 1, 1, 0.4)
	g.AddArc(1, 3, 1, 0)
	g.AddArc(0, 2, 1, 0.9)
	g.AddArc(2, 3, 1, 0)
	sv := NewSolver(g, 0, 3)
	units, cost, ok := sv.AugmentBelow(10, 0.5)
	if !ok || units != 1 || math.Abs(cost-0.4) > 1e-12 {
		t.Fatalf("first AugmentBelow = (%d, %v, %v)", units, cost, ok)
	}
	units, cost, ok = sv.AugmentBelow(10, 0.5)
	if ok || units != 0 {
		t.Fatalf("second AugmentBelow pushed %d units", units)
	}
	if math.Abs(cost-0.9) > 1e-12 {
		t.Fatalf("rejected cost = %v, want 0.9", cost)
	}
	// Raising the bound lets the expensive path through.
	if units, _, ok = sv.AugmentBelow(10, 1.0); !ok || units != 1 {
		t.Fatalf("bound raise failed: (%d, %v)", units, ok)
	}
	// Saturated network: not ok, zero cost reported.
	if _, _, ok = sv.AugmentBelow(10, 1.0); ok {
		t.Fatal("saturated network still augmented")
	}
	if _, _, ok := sv.AugmentBelow(0, 1.0); ok {
		t.Fatal("zero maxUnits augmented")
	}
}
