package mincostflow

import (
	"sync"

	"github.com/ebsnlab/geacc/internal/pqueue"
)

// Per-solve allocation pooling. The GEACC reduction builds one flow network
// and one SSPA solver per solve — at v100_u2000 that is ~200k pair arcs
// (five parallel slices) plus the solver's potential/distance/parent arrays
// and Dijkstra heap, all dead the moment the matching is read back. Under a
// sustained request stream those allocations dominate the solve path's GC
// pressure, so both objects are poolable: Reset re-targets the storage at a
// new shape without releasing it, and Acquire/Release wrap that in a
// sync.Pool.
//
// Race safety: a pooled Graph or Solver is owned by exactly one goroutine
// between Acquire and Release, and every field the next solve reads is
// rewritten by Reset (head refilled with -1, arc slices truncated, solver
// counters zeroed), so no state from a previous owner can leak into a
// result. core's TestPooledSolveRace hammers this path under -race.

var graphPool = sync.Pool{New: func() any { return new(Graph) }}

// AcquireGraph returns an empty n-node Graph, reusing pooled storage when
// shapes allow. Callers pass it back with ReleaseGraph once flows have been
// read; the Graph must not be used after release.
func AcquireGraph(n int) *Graph {
	g := graphPool.Get().(*Graph)
	g.Reset(n)
	return g
}

// ReleaseGraph returns a Graph to the pool. nil is ignored.
func ReleaseGraph(g *Graph) {
	if g != nil {
		graphPool.Put(g)
	}
}

// Reset re-targets the Graph at an empty n-node network, keeping allocated
// arc storage. Equivalent to NewGraph(n) with recycled memory.
func (g *Graph) Reset(n int) {
	if n <= 0 {
		panic("mincostflow: non-positive node count in Reset")
	}
	g.numNodes = n
	if cap(g.head) < n {
		g.head = make([]int32, n)
	} else {
		g.head = g.head[:n]
	}
	for i := range g.head {
		g.head[i] = -1
	}
	g.to = g.to[:0]
	g.next = g.next[:0]
	g.cap = g.cap[:0]
	g.cost = g.cost[:0]
}

var solverPool = sync.Pool{New: func() any { return new(Solver) }}

// AcquireSolver returns a Solver prepared for an SSPA run on g, reusing
// pooled array storage. Release with ReleaseSolver after the last
// TotalFlow/TotalCost read; release the Solver before (or together with)
// its Graph, never after the Graph has been re-acquired elsewhere.
func AcquireSolver(g *Graph, s, t int) *Solver {
	sv := solverPool.Get().(*Solver)
	sv.Reset(g, s, t)
	return sv
}

// ReleaseSolver returns a Solver to the pool. nil is ignored. The solver
// drops its Graph reference so a pooled solver never pins a network's arc
// storage alive.
func ReleaseSolver(sv *Solver) {
	if sv == nil {
		return
	}
	sv.g = nil
	solverPool.Put(sv)
}

// Reset prepares the Solver for a fresh SSPA run from s to t on g, keeping
// allocated storage. Equivalent to NewSolver with recycled memory.
func (sv *Solver) Reset(g *Graph, s, t int) {
	if s < 0 || s >= g.numNodes || t < 0 || t >= g.numNodes || s == t {
		panic("mincostflow: invalid terminals in Reset")
	}
	n := g.numNodes
	sv.g, sv.s, sv.t = g, s, t
	sv.totalFlow = 0
	sv.totalCost = 0
	sv.pot = resizeFloats(sv.pot, n)
	for i := range sv.pot {
		sv.pot[i] = 0
	}
	sv.dist = resizeFloats(sv.dist, n)
	sv.prev = resizeInt32s(sv.prev, n)
	if sv.heap == nil {
		sv.heap = pqueue.NewIndexedMinHeap(n)
	} else {
		sv.heap.Resize(n)
	}
	hasNegative := false
	for i := 0; i < len(g.cost); i += 2 {
		if g.cap[i] > 0 && g.cost[i] < 0 {
			hasNegative = true
			break
		}
	}
	if hasNegative {
		sv.bellmanFordPotentials()
	}
}

func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
