package mincostflow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSinglePath(t *testing.T) {
	// s -> a -> t with capacity 3, cost 1 per hop.
	g := NewGraph(3)
	g.AddArc(0, 1, 3, 1)
	g.AddArc(1, 2, 3, 1)
	sv := NewSolver(g, 0, 2)
	flow, cost := sv.MinCostFlow(math.MaxInt64)
	if flow != 3 || cost != 6 {
		t.Fatalf("flow=%d cost=%v, want 3, 6", flow, cost)
	}
}

func TestChoosesCheaperPath(t *testing.T) {
	// Two parallel 2-hop paths; cheaper one must fill first.
	g := NewGraph(4)
	g.AddArc(0, 1, 1, 5) // expensive via node 1
	g.AddArc(1, 3, 1, 0)
	g.AddArc(0, 2, 1, 1) // cheap via node 2
	g.AddArc(2, 3, 1, 0)
	sv := NewSolver(g, 0, 3)
	units, unitCost, ok := sv.Augment(1)
	if !ok || units != 1 || unitCost != 1 {
		t.Fatalf("first augment = (%d, %v, %v), want (1, 1, true)", units, unitCost, ok)
	}
	units, unitCost, ok = sv.Augment(1)
	if !ok || units != 1 || unitCost != 5 {
		t.Fatalf("second augment = (%d, %v, %v), want (1, 5, true)", units, unitCost, ok)
	}
	if _, _, ok = sv.Augment(1); ok {
		t.Fatal("third augment should fail: network saturated")
	}
}

func TestResidualReroute(t *testing.T) {
	// Classic diamond where the optimal 2-unit flow must cancel part of the
	// greedy first path through the middle arc.
	//     s(0) -> a(1) cost 1
	//     s(0) -> b(2) cost 2
	//     a -> b cost 0   (tempting shortcut)
	//     a -> t(3) cost 3
	//     b -> t cost 1
	g := NewGraph(4)
	g.AddArc(0, 1, 1, 1)
	g.AddArc(0, 2, 1, 2)
	ab := g.AddArc(1, 2, 1, 0)
	g.AddArc(1, 3, 1, 3)
	g.AddArc(2, 3, 1, 1)
	sv := NewSolver(g, 0, 3)
	flow, cost := sv.MinCostFlow(2)
	if flow != 2 || cost != 7 {
		t.Fatalf("flow=%d cost=%v, want 2, 7", flow, cost)
	}
	// First unit goes s->a->b->t (cost 2). Optimal two units are
	// s->a->b->t and s->b->t is blocked by b->t capacity... with unit
	// capacities the optimum uses a->t and b->t: check the shortcut ended
	// unused or used consistently with cost 7.
	_ = ab
}

func TestUnitCostsNonDecreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		g, s, tt := randomBipartite(rng, 4, 5)
		sv := NewSolver(g, s, tt)
		prev := -1.0
		for {
			_, c, ok := sv.Augment(1)
			if !ok {
				break
			}
			if c < prev-1e-9 {
				t.Fatalf("trial %d: unit cost decreased: %v after %v", trial, c, prev)
			}
			prev = c
		}
	}
}

func TestFlowConservationProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, s, tt := randomBipartite(rng, 1+rng.Intn(4), 1+rng.Intn(5))
		sv := NewSolver(g, s, tt)
		sv.MinCostFlow(math.MaxInt64)
		// Net flow at every node except s, t must be zero. Reconstruct arc
		// flows from residual twins.
		net := make(map[int]int64)
		for a := 0; a < len(g.to); a += 2 {
			from := int(g.to[a^1])
			to := int(g.to[a])
			f := g.Flow(ArcID(a))
			if f < 0 {
				return false
			}
			net[from] -= f
			net[to] += f
		}
		for v, n := range net {
			if v == s || v == tt {
				continue
			}
			if n != 0 {
				return false
			}
		}
		return net[s] == -net[tt] && net[s] == -sv.TotalFlow()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// bruteMinCost computes, for a small bipartite transportation instance, the
// minimum cost of shipping exactly k units, by exhaustive enumeration over
// 0/1 assignment matrices. Returns +Inf when k units are infeasible.
func bruteMinCost(nv, nu int, capV, capU []int64, cost [][]float64, k int) float64 {
	best := math.Inf(1)
	remV := append([]int64(nil), capV...)
	remU := append([]int64(nil), capU...)
	var rec func(idx, used int, total float64)
	rec = func(idx, used int, total float64) {
		if used == k {
			if total < best {
				best = total
			}
			return
		}
		if idx == nv*nu {
			return
		}
		v, u := idx/nu, idx%nu
		// Skip this pair.
		rec(idx+1, used, total)
		// Take this pair if capacities allow.
		if remV[v] > 0 && remU[u] > 0 {
			remV[v]--
			remU[u]--
			rec(idx+1, used+1, total+cost[v][u])
			remV[v]++
			remU[u]++
		}
	}
	rec(0, 0, 0)
	return best
}

func TestMatchesBruteForceEveryAmount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		nv, nu := 1+rng.Intn(3), 1+rng.Intn(3)
		capV := make([]int64, nv)
		capU := make([]int64, nu)
		for i := range capV {
			capV[i] = 1 + int64(rng.Intn(2))
		}
		for i := range capU {
			capU[i] = 1 + int64(rng.Intn(2))
		}
		cost := make([][]float64, nv)
		for v := range cost {
			cost[v] = make([]float64, nu)
			for u := range cost[v] {
				cost[v][u] = math.Round(rng.Float64()*100) / 100
			}
		}
		var sumV, sumU int64
		for _, c := range capV {
			sumV += c
		}
		for _, c := range capU {
			sumU += c
		}
		maxFlow := sumV
		if sumU < maxFlow {
			maxFlow = sumU
		}
		for k := int64(1); k <= maxFlow; k++ {
			g, s, tt := buildBipartite(nv, nu, capV, capU, cost)
			sv := NewSolver(g, s, tt)
			flow, got := sv.MinCostFlow(k)
			want := bruteMinCost(nv, nu, capV, capU, cost, int(k))
			if math.IsInf(want, 1) {
				if flow == k {
					t.Fatalf("trial %d k=%d: solver found %d units, brute force says infeasible", trial, k, flow)
				}
				continue
			}
			if flow != k {
				t.Fatalf("trial %d k=%d: solver pushed only %d units", trial, k, flow)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d k=%d: cost %v, brute force %v", trial, k, got, want)
			}
		}
	}
}

func TestNegativeCostArcs(t *testing.T) {
	// A negative arc forces the Bellman–Ford potential bootstrap.
	g := NewGraph(4)
	g.AddArc(0, 1, 2, -3)
	g.AddArc(1, 2, 2, 1)
	g.AddArc(0, 2, 2, 5)
	g.AddArc(2, 3, 3, 0)
	sv := NewSolver(g, 0, 3)
	flow, cost := sv.MinCostFlow(3)
	if flow != 3 {
		t.Fatalf("flow = %d, want 3", flow)
	}
	// Two units via the negative path (-2 each), one via the direct arc (5).
	if want := 2*(-2.0) + 5; math.Abs(cost-want) > 1e-9 {
		t.Fatalf("cost = %v, want %v", cost, want)
	}
}

func TestUnreachableSink(t *testing.T) {
	g := NewGraph(3)
	g.AddArc(0, 1, 1, 1) // node 2 disconnected
	sv := NewSolver(g, 0, 2)
	flow, cost := sv.MinCostFlow(5)
	if flow != 0 || cost != 0 {
		t.Fatalf("flow=%d cost=%v, want 0, 0", flow, cost)
	}
	if _, _, ok := sv.Augment(1); ok {
		t.Fatal("Augment must fail on unreachable sink")
	}
}

func TestZeroCapacityArcIgnored(t *testing.T) {
	g := NewGraph(2)
	g.AddArc(0, 1, 0, 1)
	sv := NewSolver(g, 0, 1)
	if flow, _ := sv.MinCostFlow(1); flow != 0 {
		t.Fatalf("flow through zero-capacity arc: %d", flow)
	}
}

func TestArcFlowReadback(t *testing.T) {
	g := NewGraph(3)
	a1 := g.AddArc(0, 1, 4, 1)
	a2 := g.AddArc(1, 2, 2, 1)
	sv := NewSolver(g, 0, 2)
	sv.MinCostFlow(math.MaxInt64)
	if g.Flow(a1) != 2 || g.Flow(a2) != 2 {
		t.Fatalf("arc flows = %d, %d, want 2, 2", g.Flow(a1), g.Flow(a2))
	}
}

func TestAugmentRespectsMaxUnits(t *testing.T) {
	g := NewGraph(2)
	g.AddArc(0, 1, 10, 0.5)
	sv := NewSolver(g, 0, 1)
	units, _, ok := sv.Augment(3)
	if !ok || units != 3 {
		t.Fatalf("units = %d, want 3", units)
	}
	if sv.TotalFlow() != 3 {
		t.Fatalf("TotalFlow = %d", sv.TotalFlow())
	}
	if units, _, _ := sv.Augment(100); units != 7 {
		t.Fatalf("bottleneck cap not honored: %d", units)
	}
}

func TestBadConstructionPanics(t *testing.T) {
	assertPanics(t, func() { NewGraph(0) })
	g := NewGraph(2)
	assertPanics(t, func() { g.AddArc(-1, 0, 1, 0) })
	assertPanics(t, func() { g.AddArc(0, 2, 1, 0) })
	assertPanics(t, func() { g.AddArc(0, 1, -1, 0) })
	assertPanics(t, func() { g.AddArc(0, 1, 1, math.NaN()) })
	assertPanics(t, func() { NewSolver(g, 0, 0) })
	assertPanics(t, func() { NewSolver(g, 0, 5) })
}

// randomBipartite builds a random transportation network: source 0,
// events 1..nv, users nv+1..nv+nu, sink nv+nu+1, unit pair capacities and
// costs in [0, 1] (the shape of the GEACC reduction).
func randomBipartite(rng *rand.Rand, nv, nu int) (g *Graph, s, t int) {
	capV := make([]int64, nv)
	capU := make([]int64, nu)
	for i := range capV {
		capV[i] = 1 + int64(rng.Intn(3))
	}
	for i := range capU {
		capU[i] = 1 + int64(rng.Intn(2))
	}
	cost := make([][]float64, nv)
	for v := range cost {
		cost[v] = make([]float64, nu)
		for u := range cost[v] {
			cost[v][u] = rng.Float64()
		}
	}
	return buildBipartite(nv, nu, capV, capU, cost)
}

func buildBipartite(nv, nu int, capV, capU []int64, cost [][]float64) (g *Graph, s, t int) {
	n := nv + nu + 2
	s, t = 0, n-1
	g = NewGraph(n)
	for v := 0; v < nv; v++ {
		g.AddArc(s, 1+v, capV[v], 0)
	}
	for u := 0; u < nu; u++ {
		g.AddArc(1+nv+u, t, capU[u], 0)
	}
	for v := 0; v < nv; v++ {
		for u := 0; u < nu; u++ {
			g.AddArc(1+v, 1+nv+u, 1, cost[v][u])
		}
	}
	return g, s, t
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
