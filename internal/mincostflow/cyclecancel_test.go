package mincostflow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCycleCancelingSimple(t *testing.T) {
	g := NewGraph(4)
	g.AddArc(0, 1, 1, 5)
	g.AddArc(1, 3, 1, 0)
	g.AddArc(0, 2, 1, 1)
	g.AddArc(2, 3, 1, 0)
	flow, cost, err := CycleCanceling(g, 0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 1 || math.Abs(cost-1) > 1e-9 {
		t.Fatalf("flow=%d cost=%v, want 1, 1", flow, cost)
	}
}

func TestCycleCancelingNeedsCanceling(t *testing.T) {
	// BFS establishes flow on the expensive path first; a negative residual
	// cycle then reroutes it.
	g := NewGraph(4)
	g.AddArc(0, 1, 1, 10) // expensive
	g.AddArc(1, 3, 1, 0)
	g.AddArc(0, 2, 1, 1) // cheap
	g.AddArc(2, 3, 1, 0)
	flow, cost, err := CycleCanceling(g, 0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 1 || math.Abs(cost-1) > 1e-9 {
		t.Fatalf("flow=%d cost=%v, want 1, 1", flow, cost)
	}
}

func TestCycleCancelingMatchesSSPAProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv, nu := 1+rng.Intn(4), 1+rng.Intn(4)
		capV := make([]int64, nv)
		capU := make([]int64, nu)
		for i := range capV {
			capV[i] = 1 + int64(rng.Intn(3))
		}
		for i := range capU {
			capU[i] = 1 + int64(rng.Intn(2))
		}
		cost := make([][]float64, nv)
		for v := range cost {
			cost[v] = make([]float64, nu)
			for u := range cost[v] {
				cost[v][u] = math.Round(rng.Float64()*1000) / 1000
			}
		}
		var sumV, sumU int64
		for _, c := range capV {
			sumV += c
		}
		for _, c := range capU {
			sumU += c
		}
		maxFlow := sumV
		if sumU < maxFlow {
			maxFlow = sumU
		}
		target := 1 + rng.Int63n(maxFlow)

		gA, s, tt := buildBipartite(nv, nu, capV, capU, cost)
		sspa := NewSolver(gA, s, tt)
		flowA, costA := sspa.MinCostFlow(target)

		gB, _, _ := buildBipartite(nv, nu, capV, capU, cost)
		flowB, costB, err := CycleCanceling(gB, s, tt, target)
		if err != nil {
			return false
		}
		return flowA == flowB && math.Abs(costA-costB) <= 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestCycleCancelingPartialFlow(t *testing.T) {
	// Target exceeds the max flow: solver delivers what is possible.
	g := NewGraph(3)
	g.AddArc(0, 1, 2, 1)
	g.AddArc(1, 2, 2, 1)
	flow, cost, err := CycleCanceling(g, 0, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 2 || math.Abs(cost-4) > 1e-9 {
		t.Fatalf("flow=%d cost=%v", flow, cost)
	}
}

func TestCycleCancelingDisconnected(t *testing.T) {
	g := NewGraph(3)
	g.AddArc(0, 1, 1, 1)
	flow, cost, err := CycleCanceling(g, 0, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 0 || cost != 0 {
		t.Fatalf("flow=%d cost=%v", flow, cost)
	}
}

func TestCycleCancelingBadTerminals(t *testing.T) {
	g := NewGraph(2)
	if _, _, err := CycleCanceling(g, 0, 0, 1); err == nil {
		t.Error("s == t accepted")
	}
	if _, _, err := CycleCanceling(g, 0, 5, 1); err == nil {
		t.Error("out-of-range sink accepted")
	}
}

func BenchmarkFlowSolvers(b *testing.B) {
	// The §III.A algorithm-choice ablation: SSPA (the paper's pick) versus
	// cycle canceling on a GEACC-shaped transportation network.
	rng := rand.New(rand.NewSource(77))
	const nv, nu = 20, 100
	capV := make([]int64, nv)
	capU := make([]int64, nu)
	for i := range capV {
		capV[i] = 1 + int64(rng.Intn(10))
	}
	for i := range capU {
		capU[i] = 1 + int64(rng.Intn(3))
	}
	cost := make([][]float64, nv)
	for v := range cost {
		cost[v] = make([]float64, nu)
		for u := range cost[v] {
			cost[v][u] = rng.Float64()
		}
	}
	b.Run("sspa", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, s, t := buildBipartite(nv, nu, capV, capU, cost)
			sv := NewSolver(g, s, t)
			sv.MinCostFlow(50)
		}
	})
	b.Run("cycle-canceling", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, s, t := buildBipartite(nv, nu, capV, capU, cost)
			if _, _, err := CycleCanceling(g, s, t, 50); err != nil {
				b.Fatal(err)
			}
		}
	})
}
