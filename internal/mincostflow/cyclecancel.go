package mincostflow

import (
	"fmt"
	"math"
)

// CycleCanceling computes a minimum-cost flow of exactly target units (or
// the maximum flow, if smaller) with the classic cycle-canceling method:
// establish a feasible flow of the desired amount with plain augmenting
// paths, then repeatedly cancel negative-cost residual cycles found by
// Bellman-Ford until none remain.
//
// The paper's Section III.A picks the successive-shortest-path algorithm as
// the practical choice for MinCostFlow-GEACC; this solver exists as the
// ablation baseline for that decision (see BenchmarkFlowSolvers) and as an
// independent oracle in tests. It mutates g like Solver does; use a fresh
// graph per run.
func CycleCanceling(g *Graph, s, t int, target int64) (flow int64, cost float64, err error) {
	if s < 0 || s >= g.numNodes || t < 0 || t >= g.numNodes || s == t {
		return 0, 0, fmt.Errorf("mincostflow: invalid terminals s=%d t=%d (n=%d)", s, t, g.numNodes)
	}
	flow = establishFlow(g, s, t, target)
	for {
		cycle := findNegativeCycle(g)
		if cycle == nil {
			break
		}
		// Bottleneck along the cycle.
		bottleneck := int64(math.MaxInt64)
		for _, a := range cycle {
			if g.cap[a] < bottleneck {
				bottleneck = g.cap[a]
			}
		}
		for _, a := range cycle {
			g.cap[a] -= bottleneck
			g.cap[int32(a)^1] += bottleneck
		}
	}
	// Recompute the final cost from arc flows.
	for a := 0; a < len(g.to); a += 2 {
		cost += float64(g.Flow(ArcID(a))) * g.cost[a]
	}
	return flow, cost, nil
}

// establishFlow pushes up to target units from s to t along BFS augmenting
// paths, ignoring costs.
func establishFlow(g *Graph, s, t int, target int64) int64 {
	var total int64
	prev := make([]int32, g.numNodes)
	for total < target {
		for i := range prev {
			prev[i] = -1
		}
		// BFS over positive-capacity residual arcs.
		queue := []int{s}
		prev[s] = -2
		for len(queue) > 0 && prev[t] == -1 {
			v := queue[0]
			queue = queue[1:]
			for a := g.head[v]; a >= 0; a = g.next[a] {
				w := int(g.to[a])
				if g.cap[a] > 0 && prev[w] == -1 {
					prev[w] = a
					queue = append(queue, w)
				}
			}
		}
		if prev[t] == -1 {
			break // no augmenting path left
		}
		bottleneck := target - total
		for v := t; v != s; {
			a := prev[v]
			if g.cap[a] < bottleneck {
				bottleneck = g.cap[a]
			}
			v = int(g.to[int32(a)^1])
		}
		for v := t; v != s; {
			a := prev[v]
			g.cap[a] -= bottleneck
			g.cap[int32(a)^1] += bottleneck
			v = int(g.to[int32(a)^1])
		}
		total += bottleneck
	}
	return total
}

// findNegativeCycle runs Bellman-Ford over the residual graph from a
// virtual source connected to every node, returning the arcs of one
// negative-cost cycle, or nil if none exists. A tiny epsilon guards against
// floating-point noise canceling "cycles" of cost ~0 forever.
func findNegativeCycle(g *Graph) []int32 {
	const eps = 1e-12
	n := g.numNodes
	dist := make([]float64, n)
	prevArc := make([]int32, n)
	for i := range prevArc {
		prevArc[i] = -1
	}
	var cycleNode = -1
	for iter := 0; iter < n; iter++ {
		cycleNode = -1
		for v := 0; v < n; v++ {
			for a := g.head[v]; a >= 0; a = g.next[a] {
				if g.cap[a] <= 0 {
					continue
				}
				w := int(g.to[a])
				if nd := dist[v] + g.cost[a]; nd < dist[w]-eps {
					dist[w] = nd
					prevArc[w] = a
					cycleNode = w
				}
			}
		}
		if cycleNode == -1 {
			return nil
		}
	}
	// A relaxation happened on the n-th pass: walk predecessors n times to
	// land inside the cycle, then collect it.
	v := cycleNode
	for i := 0; i < n; i++ {
		v = int(g.to[int32(prevArc[v])^1])
	}
	var cycle []int32
	for w := v; ; {
		a := prevArc[w]
		cycle = append(cycle, a)
		w = int(g.to[int32(a)^1])
		if w == v {
			break
		}
	}
	return cycle
}
