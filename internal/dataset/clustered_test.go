package dataset

import "testing"

func TestClusteredDefaults(t *testing.T) {
	c := DefaultClustered()
	in, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if in.NumEvents() != 100 || in.NumUsers() != 1000 {
		t.Fatalf("sizes %d, %d", in.NumEvents(), in.NumUsers())
	}
	if got := len(in.Events[0].Attrs); got != c.Dim() {
		t.Fatalf("d = %d, want %d", got, c.Dim())
	}
	for _, e := range in.Events {
		if e.Cap < 1 || e.Cap > 50 {
			t.Fatalf("event capacity %d outside [1, 50]", e.Cap)
		}
	}
	for _, u := range in.Users {
		if u.Cap < 1 || u.Cap > 4 {
			t.Fatalf("user capacity %d outside [1, 4]", u.Cap)
		}
	}
}

// TestClusteredSimilaritySplit is the structural guarantee the decomposition
// layer relies on: cross-community similarity is exactly 0 (disjoint
// attribute supports under cosine), intra-community similarity strictly
// positive.
func TestClusteredSimilaritySplit(t *testing.T) {
	c := ClusteredConfig{
		NumEvents: 12, NumUsers: 36, Communities: 4, BlockDim: 3,
		EventCapMax: 5, UserCapMax: 3, CFRatio: 0.3, Seed: 2,
	}
	in, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < in.NumEvents(); v++ {
		for u := 0; u < in.NumUsers(); u++ {
			s := in.Similarity(v, u)
			if v%c.Communities == u%c.Communities {
				if s <= 0 {
					t.Fatalf("intra-community sim(%d, %d) = %v, want > 0", v, u, s)
				}
			} else if s != 0 {
				t.Fatalf("cross-community sim(%d, %d) = %v, want exactly 0", v, u, s)
			}
		}
	}
}

func TestClusteredConflictsIntraCommunityOnly(t *testing.T) {
	c := ClusteredConfig{
		NumEvents: 24, NumUsers: 24, Communities: 4, BlockDim: 2,
		EventCapMax: 3, UserCapMax: 2, CFRatio: 0.5, Seed: 3,
	}
	in, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	edges := 0
	for v := 0; v < in.NumEvents(); v++ {
		for _, w := range in.Conflicts.Neighbors(v) {
			if v%c.Communities != w%c.Communities {
				t.Fatalf("cross-community conflict (%d, %d)", v, w)
			}
			if v < w {
				edges++
			}
		}
	}
	// 4 communities × 6 members × CFRatio 0.5 → round(0.5·15) = 8 pairs each.
	if want := 4 * 8; edges != want {
		t.Fatalf("got %d conflict edges, want %d", edges, want)
	}
}

func TestClusteredDeterministicPerSeed(t *testing.T) {
	c := DefaultClustered()
	c.NumEvents, c.NumUsers = 16, 40
	a, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Events {
		for u := range a.Users {
			if a.Similarity(v, u) != b.Similarity(v, u) {
				t.Fatal("same seed, different similarities")
			}
		}
		if a.Events[v].Cap != b.Events[v].Cap {
			t.Fatal("same seed, different event capacities")
		}
	}
	c.Seed = 99
	d, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := range a.Events {
		for i := range a.Events[v].Attrs {
			if a.Events[v].Attrs[i] != d.Events[v].Attrs[i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical attributes")
	}
}

func TestClusteredValidation(t *testing.T) {
	bad := []ClusteredConfig{
		{NumEvents: 0, NumUsers: 1, Communities: 1, BlockDim: 1, EventCapMax: 1, UserCapMax: 1},
		{NumEvents: 1, NumUsers: 1, Communities: 0, BlockDim: 1, EventCapMax: 1, UserCapMax: 1},
		{NumEvents: 1, NumUsers: 1, Communities: 1, BlockDim: 0, EventCapMax: 1, UserCapMax: 1},
		{NumEvents: 1, NumUsers: 1, Communities: 1, BlockDim: 1, EventCapMax: 0, UserCapMax: 1},
		{NumEvents: 1, NumUsers: 1, Communities: 1, BlockDim: 1, EventCapMax: 1, UserCapMax: 1, CFRatio: 1.5},
	}
	for i, c := range bad {
		if _, err := c.Generate(); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
}
