package dataset

import "testing"

func TestClusteredDefaults(t *testing.T) {
	c := DefaultClustered()
	in, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if in.NumEvents() != 100 || in.NumUsers() != 1000 {
		t.Fatalf("sizes %d, %d", in.NumEvents(), in.NumUsers())
	}
	if got := len(in.Events[0].Attrs); got != c.Dim() {
		t.Fatalf("d = %d, want %d", got, c.Dim())
	}
	for _, e := range in.Events {
		if e.Cap < 1 || e.Cap > 50 {
			t.Fatalf("event capacity %d outside [1, 50]", e.Cap)
		}
	}
	for _, u := range in.Users {
		if u.Cap < 1 || u.Cap > 4 {
			t.Fatalf("user capacity %d outside [1, 4]", u.Cap)
		}
	}
}

// TestClusteredSimilaritySplit is the structural guarantee the decomposition
// layer relies on: cross-community similarity is exactly 0 (disjoint
// attribute supports under cosine), intra-community similarity strictly
// positive.
func TestClusteredSimilaritySplit(t *testing.T) {
	c := ClusteredConfig{
		NumEvents: 12, NumUsers: 36, Communities: 4, BlockDim: 3,
		EventCapMax: 5, UserCapMax: 3, CFRatio: 0.3, Seed: 2,
	}
	in, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < in.NumEvents(); v++ {
		for u := 0; u < in.NumUsers(); u++ {
			s := in.Similarity(v, u)
			if v%c.Communities == u%c.Communities {
				if s <= 0 {
					t.Fatalf("intra-community sim(%d, %d) = %v, want > 0", v, u, s)
				}
			} else if s != 0 {
				t.Fatalf("cross-community sim(%d, %d) = %v, want exactly 0", v, u, s)
			}
		}
	}
}

func TestClusteredConflictsIntraCommunityOnly(t *testing.T) {
	c := ClusteredConfig{
		NumEvents: 24, NumUsers: 24, Communities: 4, BlockDim: 2,
		EventCapMax: 3, UserCapMax: 2, CFRatio: 0.5, Seed: 3,
	}
	in, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	edges := 0
	for v := 0; v < in.NumEvents(); v++ {
		for _, w := range in.Conflicts.Neighbors(v) {
			if v%c.Communities != w%c.Communities {
				t.Fatalf("cross-community conflict (%d, %d)", v, w)
			}
			if v < w {
				edges++
			}
		}
	}
	// 4 communities × 6 members × CFRatio 0.5 → round(0.5·15) = 8 pairs each.
	if want := 4 * 8; edges != want {
		t.Fatalf("got %d conflict edges, want %d", edges, want)
	}
}

func TestClusteredDeterministicPerSeed(t *testing.T) {
	c := DefaultClustered()
	c.NumEvents, c.NumUsers = 16, 40
	a, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Events {
		for u := range a.Users {
			if a.Similarity(v, u) != b.Similarity(v, u) {
				t.Fatal("same seed, different similarities")
			}
		}
		if a.Events[v].Cap != b.Events[v].Cap {
			t.Fatal("same seed, different event capacities")
		}
	}
	c.Seed = 99
	d, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := range a.Events {
		for i := range a.Events[v].Attrs {
			if a.Events[v].Attrs[i] != d.Events[v].Attrs[i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical attributes")
	}
}

// TestClusteredBridgeFormsGiantComponent: any positive BridgeFrac must
// chain every community into ONE positive-similarity component. The
// parameters reproduce the stride/communities interaction that once broke
// this (frac 0.05 -> stride 20 shares a factor with k = 8): selection by
// rank within community keeps every community bridged regardless of gcd.
func TestClusteredBridgeFormsGiantComponent(t *testing.T) {
	c := ClusteredConfig{
		NumEvents: 24, NumUsers: 320, Communities: 8, BlockDim: 2,
		EventCapMax: 4, UserCapMax: 2, CFRatio: 0.2,
		BridgeFrac: 0.05, Seed: 4,
	}
	in, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Union-find over the bipartite positive-similarity graph.
	parent := make([]int, in.NumEvents()+in.NumUsers())
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for v := 0; v < in.NumEvents(); v++ {
		for u := 0; u < in.NumUsers(); u++ {
			if in.Similarity(v, u) > 0 {
				parent[find(v)] = find(in.NumEvents() + u)
			}
		}
	}
	root := find(0)
	for i := range parent {
		if find(i) != root {
			t.Fatalf("node %d disconnected: bridge users did not chain the communities", i)
		}
	}
}

// TestClusteredBridgeStructure: with BridgeFrac 0 every user draws only
// inside its home block (so clusters stay exactly disjoint); with a positive
// fraction, exactly the rank-selected bridge users also carry small positive
// values in the NEXT community's block, events are untouched by the knob,
// and generation stays deterministic per seed.
func TestClusteredBridgeStructure(t *testing.T) {
	c := ClusteredConfig{
		NumEvents: 16, NumUsers: 160, Communities: 4, BlockDim: 3,
		EventCapMax: 4, UserCapMax: 2, CFRatio: 0.2, Seed: 6,
	}
	blockNonzero := func(attrs []float64, k int) bool {
		for d := k * c.BlockDim; d < (k+1)*c.BlockDim; d++ {
			if attrs[d] != 0 {
				return true
			}
		}
		return false
	}
	plain, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for u, usr := range plain.Users {
		for k := 0; k < c.Communities; k++ {
			if got, want := blockNonzero(usr.Attrs, k), k == u%c.Communities; got != want {
				t.Fatalf("BridgeFrac 0: user %d block %d nonzero=%v, want %v", u, k, got, want)
			}
		}
	}
	c.BridgeFrac = 0.1 // stride 10: user ranks 0, 10, 20, ... bridge
	withBridges, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Events draw before users, so the knob cannot perturb them.
	for v := range plain.Events {
		for d := range plain.Events[v].Attrs {
			if plain.Events[v].Attrs[d] != withBridges.Events[v].Attrs[d] {
				t.Fatalf("event %d attrs perturbed by the bridge knob", v)
			}
		}
	}
	bridges := 0
	for u, usr := range withBridges.Users {
		home := u % c.Communities
		next := (home + 1) % c.Communities
		isBridge := (u/c.Communities)%10 == 0
		if got := blockNonzero(usr.Attrs, next); got != isBridge {
			t.Fatalf("user %d (bridge=%v): next-block nonzero=%v", u, isBridge, got)
		}
		if isBridge {
			bridges++
		}
	}
	if want := 4 * 4; bridges != want { // 40 ranks per community, every 10th
		t.Fatalf("%d bridge users, want %d", bridges, want)
	}
	again, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for u := range withBridges.Users {
		for d := range withBridges.Users[u].Attrs {
			if withBridges.Users[u].Attrs[d] != again.Users[u].Attrs[d] {
				t.Fatalf("bridged generation not deterministic at user %d", u)
			}
		}
	}
}

func TestClusteredValidation(t *testing.T) {
	bad := []ClusteredConfig{
		{NumEvents: 0, NumUsers: 1, Communities: 1, BlockDim: 1, EventCapMax: 1, UserCapMax: 1},
		{NumEvents: 1, NumUsers: 1, Communities: 0, BlockDim: 1, EventCapMax: 1, UserCapMax: 1},
		{NumEvents: 1, NumUsers: 1, Communities: 1, BlockDim: 0, EventCapMax: 1, UserCapMax: 1},
		{NumEvents: 1, NumUsers: 1, Communities: 1, BlockDim: 1, EventCapMax: 0, UserCapMax: 1},
		{NumEvents: 1, NumUsers: 1, Communities: 1, BlockDim: 1, EventCapMax: 1, UserCapMax: 1, CFRatio: 1.5},
		{NumEvents: 1, NumUsers: 1, Communities: 1, BlockDim: 1, EventCapMax: 1, UserCapMax: 1, BridgeFrac: -0.1},
		{NumEvents: 1, NumUsers: 1, Communities: 1, BlockDim: 1, EventCapMax: 1, UserCapMax: 1, BridgeFrac: 1.01},
	}
	for i, c := range bad {
		if _, err := c.Generate(); err == nil {
			t.Fatalf("config %d accepted", i)
		}
	}
}
