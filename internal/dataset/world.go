package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/ebsnlab/geacc/internal/cluster"
	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/randx"
	"github.com/ebsnlab/geacc/internal/sim"
)

// The paper's preprocessing of the Meetup crawl starts from a *global*
// population: every event and user carries a location, and "it is unlikely
// for a user living in a city to attend a meet-up event held in another
// city", so entities are clustered by location and each city's
// subpopulation becomes one GEACC instance. World reproduces that pipeline:
// a geo-tagged population scattered around the TABLE II city centers, a
// location clustering (k-means), and per-cluster instance extraction.

// GeoEntity is one event or user with a location.
type GeoEntity struct {
	Attrs sim.Vector
	Cap   int
	X, Y  float64 // location, in km on an arbitrary global plane
}

// World is a global geo-tagged EBSN population.
type World struct {
	Events []GeoEntity
	Users  []GeoEntity
}

// WorldConfig parameterizes the global population generator.
type WorldConfig struct {
	// CitySpread is the standard deviation (km) of entity locations around
	// their home city center; default 15.
	CitySpread float64
	// CapDist draws capacities (Uniform or Normal, per TABLE II).
	CapDist Distribution
	Seed    int64
}

// DefaultWorld returns the TABLE II population with uniform capacities.
func DefaultWorld() WorldConfig {
	return WorldConfig{CitySpread: 15, CapDist: Uniform, Seed: 1}
}

// cityCenters places the three cities far apart on the plane.
var cityCenters = [][2]float64{
	{0, 0},       // vancouver
	{2000, 1200}, // auckland
	{4500, 300},  // singapore
}

// Generate builds the global population: each city contributes its
// TABLE II counts of events and users, scattered around its center, with
// city-skewed tag vectors.
func (c WorldConfig) Generate() (*World, error) {
	if c.CitySpread <= 0 {
		return nil, fmt.Errorf("dataset: non-positive city spread %v", c.CitySpread)
	}
	if c.CapDist != Uniform && c.CapDist != Normal {
		return nil, fmt.Errorf("dataset: world capacities use Uniform or Normal, got %q", c.CapDist)
	}
	rng := randx.Source(c.Seed)
	w := &World{}
	for ci, city := range Cities {
		skew := cityTagSkew(randx.Sub(rng))
		attrRng := randx.Sub(rng)
		capRng := randx.Sub(rng)
		locRng := randx.Sub(rng)
		center := cityCenters[ci]
		place := func() (float64, float64) {
			return center[0] + locRng.NormFloat64()*c.CitySpread,
				center[1] + locRng.NormFloat64()*c.CitySpread
		}
		for i := 0; i < city.NumEvents; i++ {
			x, y := place()
			w.Events = append(w.Events, GeoEntity{
				Attrs: tagVector(attrRng, skew),
				Cap:   c.capacity(capRng, 50, 25, 12.5),
				X:     x, Y: y,
			})
		}
		for i := 0; i < city.NumUsers; i++ {
			x, y := place()
			w.Users = append(w.Users, GeoEntity{
				Attrs: tagVector(attrRng, skew),
				Cap:   c.capacity(capRng, 4, 2, 1),
				X:     x, Y: y,
			})
		}
	}
	return w, nil
}

func (c WorldConfig) capacity(rng *rand.Rand, max int, mu, sigma float64) int {
	if c.CapDist == Normal {
		return randx.NormalInt(rng, mu, sigma, 1, max)
	}
	return randx.UniformInt(rng, 1, max)
}

// CityInstance is one extracted per-city GEACC instance.
type CityInstance struct {
	Instance *core.Instance
	// EventIDs and UserIDs map instance indices back to world indices.
	EventIDs []int
	UserIDs  []int
	// Center is the cluster's location centroid.
	Center [2]float64
}

// ExtractCities reproduces the paper's preprocessing: cluster all entities
// (events and users together) by location into numCities groups, then build
// one instance per cluster with conflicts sampled at cfRatio. Clusters are
// returned largest-population first.
func (w *World) ExtractCities(numCities int, cfRatio float64, seed int64) ([]CityInstance, error) {
	if numCities < 1 {
		return nil, fmt.Errorf("dataset: need at least one city, got %d", numCities)
	}
	if cfRatio < 0 || cfRatio > 1 {
		return nil, fmt.Errorf("dataset: conflict ratio %v outside [0, 1]", cfRatio)
	}
	if len(w.Events) == 0 || len(w.Users) == 0 {
		return nil, fmt.Errorf("dataset: empty world")
	}
	points := make([]cluster.Point, 0, len(w.Events)+len(w.Users))
	for _, e := range w.Events {
		points = append(points, cluster.Point{e.X, e.Y})
	}
	for _, u := range w.Users {
		points = append(points, cluster.Point{u.X, u.Y})
	}
	res, err := cluster.KMeans(points, numCities, seed, 0)
	if err != nil {
		return nil, err
	}

	cities := make([]CityInstance, len(res.Centers))
	for ci := range cities {
		cities[ci].Center = [2]float64{res.Centers[ci][0], res.Centers[ci][1]}
	}
	var events [][]core.Event
	var users [][]core.User
	events = make([][]core.Event, len(res.Centers))
	users = make([][]core.User, len(res.Centers))
	for i, e := range w.Events {
		c := res.Assign[i]
		events[c] = append(events[c], core.Event{Attrs: e.Attrs, Cap: e.Cap})
		cities[c].EventIDs = append(cities[c].EventIDs, i)
	}
	for i, u := range w.Users {
		c := res.Assign[len(w.Events)+i]
		users[c] = append(users[c], core.User{Attrs: u.Attrs, Cap: u.Cap})
		cities[c].UserIDs = append(cities[c].UserIDs, i)
	}

	cfRng := randx.Source(seed + 104729)
	out := cities[:0]
	for ci := range cities {
		if len(events[ci]) == 0 || len(users[ci]) == 0 {
			continue // a cluster without both sides cannot form an instance
		}
		cf := conflict.Random(cfRng, len(events[ci]), cfRatio)
		in, err := core.NewInstance(events[ci], users[ci], cf, sim.Euclidean(MeetupTagCount, 1))
		if err != nil {
			return nil, err
		}
		cities[ci].Instance = in
		out = append(out, cities[ci])
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi := out[i].Instance.NumEvents() + out[i].Instance.NumUsers()
		pj := out[j].Instance.NumEvents() + out[j].Instance.NumUsers()
		return pi > pj
	})
	return out, nil
}
