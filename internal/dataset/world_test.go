package dataset

import (
	"testing"

	"github.com/ebsnlab/geacc/internal/core"
)

func TestWorldGenerateCounts(t *testing.T) {
	w, err := DefaultWorld().Generate()
	if err != nil {
		t.Fatal(err)
	}
	wantEvents, wantUsers := 0, 0
	for _, c := range Cities {
		wantEvents += c.NumEvents
		wantUsers += c.NumUsers
	}
	if len(w.Events) != wantEvents || len(w.Users) != wantUsers {
		t.Fatalf("world has %d/%d entities, want %d/%d",
			len(w.Events), len(w.Users), wantEvents, wantUsers)
	}
	for _, e := range w.Events {
		if e.Cap < 1 || e.Cap > 50 {
			t.Fatalf("event capacity %d", e.Cap)
		}
	}
}

func TestWorldConfigErrors(t *testing.T) {
	c := DefaultWorld()
	c.CitySpread = 0
	if _, err := c.Generate(); err == nil {
		t.Error("zero spread accepted")
	}
	c = DefaultWorld()
	c.CapDist = Zipf
	if _, err := c.Generate(); err == nil {
		t.Error("zipf capacities accepted")
	}
}

func TestExtractCitiesRecoversTable2(t *testing.T) {
	w, err := DefaultWorld().Generate()
	if err != nil {
		t.Fatal(err)
	}
	cities, err := w.ExtractCities(3, 0.25, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cities) != 3 {
		t.Fatalf("extracted %d cities, want 3", len(cities))
	}
	// City separation (thousands of km) dwarfs the 15 km spread, so the
	// clustering must recover TABLE II's exact per-city counts. Largest
	// first: vancouver (225/2012), singapore (87/1500), auckland (37/569).
	want := [][2]int{{225, 2012}, {87, 1500}, {37, 569}}
	for i, c := range cities {
		got := [2]int{c.Instance.NumEvents(), c.Instance.NumUsers()}
		if got != want[i] {
			t.Fatalf("city %d = %v, want %v", i, got, want[i])
		}
		// Back-references are consistent.
		if len(c.EventIDs) != got[0] || len(c.UserIDs) != got[1] {
			t.Fatalf("city %d id mapping sizes wrong", i)
		}
		if got := c.Instance.Conflicts.Density(); got < 0.2 || got > 0.3 {
			t.Fatalf("city %d conflict density %v", i, got)
		}
	}
	// Extracted instances must be solvable end to end.
	m := core.Greedy(cities[2].Instance)
	if err := core.Validate(cities[2].Instance, m); err != nil {
		t.Fatal(err)
	}
	if m.Size() == 0 {
		t.Fatal("no assignments in extracted city")
	}
}

func TestExtractCitiesErrors(t *testing.T) {
	w, err := DefaultWorld().Generate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.ExtractCities(0, 0.25, 1); err == nil {
		t.Error("zero cities accepted")
	}
	if _, err := w.ExtractCities(3, 1.5, 1); err == nil {
		t.Error("bad conflict ratio accepted")
	}
	empty := &World{}
	if _, err := empty.ExtractCities(2, 0.25, 1); err == nil {
		t.Error("empty world accepted")
	}
}

func TestExtractCitiesMoreClustersThanCities(t *testing.T) {
	// Asking for more clusters than geographic cities still yields valid,
	// solvable instances (cities split into districts).
	w, err := DefaultWorld().Generate()
	if err != nil {
		t.Fatal(err)
	}
	cities, err := w.ExtractCities(5, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	totalE, totalU := 0, 0
	for _, c := range cities {
		totalE += c.Instance.NumEvents()
		totalU += c.Instance.NumUsers()
	}
	if totalE != len(w.Events) || totalU != len(w.Users) {
		t.Fatalf("entities lost in extraction: %d/%d vs %d/%d",
			totalE, totalU, len(w.Events), len(w.Users))
	}
}
