// Package dataset generates GEACC workloads: the synthetic instances of the
// paper's TABLE III, a Meetup-like EBSN simulator reproducing the real-data
// statistics of TABLE II, and schedule-driven instances whose conflicts come
// from timetable overlaps and travel times rather than random sampling.
//
// All generators are deterministic functions of their seed.
package dataset

import (
	"fmt"
	"math/rand"

	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/randx"
	"github.com/ebsnlab/geacc/internal/sim"
)

// Distribution names a sampling law from TABLE III.
type Distribution string

// Distributions used by the paper's generators.
const (
	Uniform Distribution = "uniform"
	Normal  Distribution = "normal"
	Zipf    Distribution = "zipf"
)

// SyntheticConfig parameterizes the TABLE III generator. The zero value is
// not useful; start from DefaultSynthetic.
type SyntheticConfig struct {
	NumEvents int     // |V|; default 100
	NumUsers  int     // |U|; default 1000
	Dim       int     // d; default 20
	MaxT      float64 // T; default 10000

	// AttrDist draws attribute components: Uniform over [0, T], Zipf with
	// exponent ZipfS over [0, T], or Normal — a 50/50 mixture of
	// N(T/4, T/4) and N(3T/4, T/4) per entity, truncated to [0, T]
	// (TABLE III lists both Normal components).
	AttrDist Distribution
	ZipfS    float64 // Zipf exponent; default 1.3

	// Event capacities: Uniform over [1, EventCapMax] (default max 50) or
	// Normal(25, 12.5) clamped to [1, EventCapMax].
	EventCapDist Distribution
	EventCapMax  int

	// User capacities: Uniform over [1, UserCapMax] (default max 4) or
	// Normal(2, 1) clamped to [1, UserCapMax].
	UserCapDist Distribution
	UserCapMax  int

	// CFRatio is |CF| / (|V|·(|V|−1)/2); default 0.25.
	CFRatio float64

	Seed int64
}

// DefaultSynthetic returns TABLE III's default (bold) setting.
func DefaultSynthetic() SyntheticConfig {
	return SyntheticConfig{
		NumEvents:    100,
		NumUsers:     1000,
		Dim:          20,
		MaxT:         10000,
		AttrDist:     Uniform,
		ZipfS:        1.3,
		EventCapDist: Uniform,
		EventCapMax:  50,
		UserCapDist:  Uniform,
		UserCapMax:   4,
		CFRatio:      0.25,
		Seed:         1,
	}
}

// Generate builds the instance described by the config.
func (c SyntheticConfig) Generate() (*core.Instance, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	rng := randx.Source(c.Seed)
	attrRng := randx.Sub(rng)
	capRng := randx.Sub(rng)
	cfRng := randx.Sub(rng)

	sampleAttrs := c.attrSampler(attrRng)
	events := make([]core.Event, c.NumEvents)
	for i := range events {
		events[i] = core.Event{
			Attrs: sampleAttrs(),
			Cap:   c.sampleCap(capRng, c.EventCapDist, c.EventCapMax, 25, 12.5),
		}
	}
	users := make([]core.User, c.NumUsers)
	for i := range users {
		users[i] = core.User{
			Attrs: sampleAttrs(),
			Cap:   c.sampleCap(capRng, c.UserCapDist, c.UserCapMax, 2, 1),
		}
	}
	cf := conflict.Random(cfRng, c.NumEvents, c.CFRatio)
	return core.NewInstance(events, users, cf, sim.Euclidean(c.Dim, c.MaxT))
}

func (c SyntheticConfig) validate() error {
	switch {
	case c.NumEvents <= 0 || c.NumUsers <= 0:
		return fmt.Errorf("dataset: non-positive cardinality |V|=%d |U|=%d", c.NumEvents, c.NumUsers)
	case c.Dim <= 0:
		return fmt.Errorf("dataset: non-positive dimensionality %d", c.Dim)
	case c.MaxT <= 0:
		return fmt.Errorf("dataset: non-positive attribute bound %v", c.MaxT)
	case c.EventCapMax < 1 || c.UserCapMax < 1:
		return fmt.Errorf("dataset: capacity maxima must be >= 1")
	case c.CFRatio < 0 || c.CFRatio > 1:
		return fmt.Errorf("dataset: conflict ratio %v outside [0, 1]", c.CFRatio)
	}
	for _, d := range []Distribution{c.AttrDist, c.EventCapDist, c.UserCapDist} {
		switch d {
		case Uniform, Normal, Zipf:
		default:
			return fmt.Errorf("dataset: unknown distribution %q", d)
		}
	}
	if c.AttrDist == Zipf && c.ZipfS <= 1 {
		return fmt.Errorf("dataset: Zipf exponent %v must be > 1", c.ZipfS)
	}
	if c.EventCapDist == Zipf || c.UserCapDist == Zipf {
		return fmt.Errorf("dataset: capacities use Uniform or Normal only (TABLE III)")
	}
	return nil
}

// attrSampler returns a function producing one attribute vector per call.
func (c SyntheticConfig) attrSampler(rng *rand.Rand) func() sim.Vector {
	switch c.AttrDist {
	case Zipf:
		z := randx.NewZipf(rng, c.ZipfS, 1<<16, c.MaxT)
		return func() sim.Vector {
			v := make(sim.Vector, c.Dim)
			for i := range v {
				v[i] = z.Next()
			}
			return v
		}
	case Normal:
		return func() sim.Vector {
			// Bimodal population: each entity draws all components from one
			// of the two TABLE III components.
			mu := c.MaxT / 4
			if rng.Intn(2) == 1 {
				mu = 3 * c.MaxT / 4
			}
			v := make(sim.Vector, c.Dim)
			for i := range v {
				v[i] = randx.Normal(rng, mu, c.MaxT/4, 0, c.MaxT)
			}
			return v
		}
	default:
		return func() sim.Vector {
			v := make(sim.Vector, c.Dim)
			for i := range v {
				v[i] = rng.Float64() * c.MaxT
			}
			return v
		}
	}
}

func (c SyntheticConfig) sampleCap(rng *rand.Rand, d Distribution, max int, mu, sigma float64) int {
	if d == Normal {
		return randx.NormalInt(rng, mu, sigma, 1, max)
	}
	return randx.UniformInt(rng, 1, max)
}
