package dataset

import (
	"math"
	"math/rand"
	"testing"

	"github.com/ebsnlab/geacc/internal/core"
)

func TestSyntheticDefaults(t *testing.T) {
	c := DefaultSynthetic()
	in, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if in.NumEvents() != 100 || in.NumUsers() != 1000 {
		t.Fatalf("sizes %d, %d", in.NumEvents(), in.NumUsers())
	}
	if len(in.Events[0].Attrs) != 20 {
		t.Fatalf("d = %d", len(in.Events[0].Attrs))
	}
	for _, e := range in.Events {
		if e.Cap < 1 || e.Cap > 50 {
			t.Fatalf("event capacity %d outside [1, 50]", e.Cap)
		}
		if err := e.Attrs.Validate(10000); err != nil {
			t.Fatal(err)
		}
	}
	for _, u := range in.Users {
		if u.Cap < 1 || u.Cap > 4 {
			t.Fatalf("user capacity %d outside [1, 4]", u.Cap)
		}
	}
	if got := in.Conflicts.Density(); math.Abs(got-0.25) > 0.01 {
		t.Fatalf("conflict density %v, want ~0.25", got)
	}
}

func TestSyntheticDeterministicPerSeed(t *testing.T) {
	c := DefaultSynthetic()
	c.NumEvents, c.NumUsers = 10, 30
	a, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Events {
		for i := range a.Events[v].Attrs {
			if a.Events[v].Attrs[i] != b.Events[v].Attrs[i] {
				t.Fatal("same seed, different attributes")
			}
		}
		if a.Events[v].Cap != b.Events[v].Cap {
			t.Fatal("same seed, different capacities")
		}
	}
	c.Seed = 2
	d, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for v := range a.Events {
		for i := range a.Events[v].Attrs {
			if a.Events[v].Attrs[i] != d.Events[v].Attrs[i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical attributes")
	}
}

func TestSyntheticDistributions(t *testing.T) {
	for _, dist := range []Distribution{Uniform, Normal, Zipf} {
		c := DefaultSynthetic()
		c.NumEvents, c.NumUsers = 30, 100
		c.AttrDist = dist
		in, err := c.Generate()
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		for _, e := range in.Events {
			if err := e.Attrs.Validate(c.MaxT); err != nil {
				t.Fatalf("%s: %v", dist, err)
			}
		}
	}
	// Normal capacities.
	c := DefaultSynthetic()
	c.NumEvents, c.NumUsers = 50, 200
	c.EventCapDist, c.UserCapDist = Normal, Normal
	in, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	var sum int
	for _, e := range in.Events {
		sum += e.Cap
	}
	mean := float64(sum) / float64(len(in.Events))
	if mean < 15 || mean > 35 {
		t.Errorf("normal event capacities mean %v far from 25", mean)
	}
}

func TestSyntheticZipfSkewsLow(t *testing.T) {
	c := DefaultSynthetic()
	c.NumEvents, c.NumUsers = 50, 50
	c.AttrDist = Zipf
	in, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	low, total := 0, 0
	for _, e := range in.Events {
		for _, x := range e.Attrs {
			total++
			if x < c.MaxT/2 {
				low++
			}
		}
	}
	if float64(low)/float64(total) < 0.9 {
		t.Errorf("zipf attributes not skewed: %d/%d below midpoint", low, total)
	}
}

func TestSyntheticValidation(t *testing.T) {
	bad := []func(*SyntheticConfig){
		func(c *SyntheticConfig) { c.NumEvents = 0 },
		func(c *SyntheticConfig) { c.NumUsers = -1 },
		func(c *SyntheticConfig) { c.Dim = 0 },
		func(c *SyntheticConfig) { c.MaxT = 0 },
		func(c *SyntheticConfig) { c.EventCapMax = 0 },
		func(c *SyntheticConfig) { c.UserCapMax = 0 },
		func(c *SyntheticConfig) { c.CFRatio = 1.5 },
		func(c *SyntheticConfig) { c.AttrDist = "lognormal" },
		func(c *SyntheticConfig) { c.AttrDist = Zipf; c.ZipfS = 1.0 },
		func(c *SyntheticConfig) { c.EventCapDist = Zipf },
	}
	for i, mutate := range bad {
		c := DefaultSynthetic()
		mutate(&c)
		if _, err := c.Generate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestMeetupCities(t *testing.T) {
	for _, city := range Cities {
		cfg := MeetupConfig{City: city.Name, CapDist: Uniform, CFRatio: 0.25, Seed: 3}
		in, err := cfg.Generate()
		if err != nil {
			t.Fatalf("%s: %v", city.Name, err)
		}
		if in.NumEvents() != city.NumEvents || in.NumUsers() != city.NumUsers {
			t.Fatalf("%s: got %d/%d, TABLE II says %d/%d",
				city.Name, in.NumEvents(), in.NumUsers(), city.NumEvents, city.NumUsers)
		}
		// Tag vectors: 20 dims, entries in [0,1], each row sums to ~1
		// (normalized tag counts).
		for _, e := range in.Events {
			if len(e.Attrs) != MeetupTagCount {
				t.Fatalf("%s: %d attributes", city.Name, len(e.Attrs))
			}
			var sum float64
			for _, x := range e.Attrs {
				if x < 0 || x > 1 {
					t.Fatalf("%s: tag value %v outside [0,1]", city.Name, x)
				}
				sum += x
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%s: tag vector sums to %v, want 1", city.Name, sum)
			}
		}
	}
}

func TestMeetupCapacitiesMatchTable2(t *testing.T) {
	cfg := DefaultMeetup()
	cfg.City = "vancouver"
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range in.Events {
		if e.Cap < 1 || e.Cap > 50 {
			t.Fatalf("event capacity %d outside [1, 50]", e.Cap)
		}
	}
	for _, u := range in.Users {
		if u.Cap < 1 || u.Cap > 4 {
			t.Fatalf("user capacity %d outside [1, 4]", u.Cap)
		}
	}
	cfg.CapDist = Normal
	if _, err := cfg.Generate(); err != nil {
		t.Fatalf("normal capacities: %v", err)
	}
}

func TestMeetupErrors(t *testing.T) {
	if _, err := (MeetupConfig{City: "atlantis", CapDist: Uniform}).Generate(); err == nil {
		t.Error("unknown city accepted")
	}
	if _, err := (MeetupConfig{City: "auckland", CapDist: Zipf}).Generate(); err == nil {
		t.Error("zipf capacities accepted")
	}
	if _, err := (MeetupConfig{City: "auckland", CapDist: Uniform, CFRatio: 2}).Generate(); err == nil {
		t.Error("bad conflict ratio accepted")
	}
	if _, err := CityByName("AUCKLAND"); err != nil {
		t.Error("city lookup should be case-insensitive")
	}
}

func TestMeetupSimilaritiesNonTrivial(t *testing.T) {
	cfg := DefaultMeetup()
	in, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Sparse tag vectors still must produce a usable similarity spread.
	var min, max = 2.0, -1.0
	for v := 0; v < 10; v++ {
		for u := 0; u < 50; u++ {
			s := in.Similarity(v, u)
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
	}
	if max-min < 0.05 {
		t.Errorf("similarities nearly constant: [%v, %v]", min, max)
	}
}

func TestScheduledGenerator(t *testing.T) {
	c := DefaultScheduled()
	c.NumEvents, c.NumUsers = 40, 200
	in, schedules, err := c.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(schedules) != 40 || in.NumEvents() != 40 {
		t.Fatal("sizes wrong")
	}
	// Conflicts must agree with a from-scratch derivation.
	for i := range schedules {
		if schedules[i].End-schedules[i].Start < c.MinDuration-1e-9 ||
			schedules[i].End-schedules[i].Start > c.MaxDuration+1e-9 {
			t.Fatalf("event %d duration %v outside [%v, %v]",
				i, schedules[i].End-schedules[i].Start, c.MinDuration, c.MaxDuration)
		}
		for j := i + 1; j < len(schedules); j++ {
			want := schedules[i].ConflictsWith(schedules[j], c.TravelSpeed)
			if got := in.Conflicting(i, j); got != want {
				t.Fatalf("conflict (%d,%d) = %v, schedules say %v", i, j, got, want)
			}
		}
	}
	// Overlapping schedules exist at this density, so CF must be non-empty.
	if in.Conflicts.Edges() == 0 {
		t.Error("no conflicts derived from a crowded day")
	}
	// A solver run keeps the instance honest end to end.
	m := core.Greedy(in)
	if err := core.Validate(in, m); err != nil {
		t.Fatal(err)
	}
}

func TestScheduledValidation(t *testing.T) {
	bad := []func(*ScheduledConfig){
		func(c *ScheduledConfig) { c.NumEvents = 0 },
		func(c *ScheduledConfig) { c.Dim = 0 },
		func(c *ScheduledConfig) { c.MinDuration = 0 },
		func(c *ScheduledConfig) { c.MaxDuration = 0.5; c.MinDuration = 1 },
		func(c *ScheduledConfig) { c.DayLength = 1; c.MaxDuration = 3 },
		func(c *ScheduledConfig) { c.TravelSpeed = 0 },
		func(c *ScheduledConfig) { c.EventCapMax = 0 },
	}
	for i, mutate := range bad {
		c := DefaultScheduled()
		mutate(&c)
		if _, _, err := c.Generate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGeneratedInstancesSolvable(t *testing.T) {
	// Small instances from every generator run through every solver.
	sc := DefaultSynthetic()
	sc.NumEvents, sc.NumUsers = 8, 25
	synth, err := sc.Generate()
	if err != nil {
		t.Fatal(err)
	}
	mc := DefaultMeetup()
	meetup, err := mc.Generate()
	if err != nil {
		t.Fatal(err)
	}
	instances := map[string]*core.Instance{"synthetic": synth, "meetup": meetup}
	for name, in := range instances {
		for algo, solve := range core.Solvers() {
			if algo == "exact" && name == "meetup" {
				continue // too large for exact search
			}
			if algo == "exact" {
				// Bound the exact run; feasibility is what matters here.
				m, _, err := core.ExactOpts(in, core.ExactOptions{NodeLimit: 200000})
				if err != nil && err != core.ErrNodeLimit {
					t.Fatalf("%s/%s: %v", name, algo, err)
				}
				if err := core.Validate(in, m); err != nil {
					t.Fatalf("%s/%s: %v", name, algo, err)
				}
				continue
			}
			m := solve(in, rand.New(rand.NewSource(9)))
			if err := core.Validate(in, m); err != nil {
				t.Fatalf("%s/%s: %v", name, algo, err)
			}
		}
	}
}
