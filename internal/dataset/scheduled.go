package dataset

import (
	"fmt"

	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/randx"
	"github.com/ebsnlab/geacc/internal/sim"
)

// ScheduledConfig generates an instance whose conflicts are *derived* from
// event timetables and venue locations instead of sampled at random — the
// semantics the paper's introduction motivates (overlapping intervals, or
// venues too far apart to reach in the gap between events).
type ScheduledConfig struct {
	NumEvents int
	NumUsers  int
	Dim       int     // interest-space dimensionality; default 20
	MaxT      float64 // interest-space bound; default 10000

	DayLength   float64 // schedule horizon in hours; default 12
	MinDuration float64 // hours; default 1
	MaxDuration float64 // hours; default 3
	AreaSize    float64 // venues in [0, AreaSize]² km; default 30
	TravelSpeed float64 // km/h; default 30

	EventCapMax int // Uniform [1, EventCapMax]; default 50
	UserCapMax  int // Uniform [1, UserCapMax]; default 4

	Seed int64
}

// DefaultScheduled returns a city-day of events: 12 hours, 1-3h events over
// a 30 km area at 30 km/h travel.
func DefaultScheduled() ScheduledConfig {
	return ScheduledConfig{
		NumEvents:   100,
		NumUsers:    1000,
		Dim:         20,
		MaxT:        10000,
		DayLength:   12,
		MinDuration: 1,
		MaxDuration: 3,
		AreaSize:    30,
		TravelSpeed: 30,
		EventCapMax: 50,
		UserCapMax:  4,
		Seed:        1,
	}
}

// Generate builds the instance plus the schedules its conflicts came from
// (so callers can print or inspect the derivation).
func (c ScheduledConfig) Generate() (*core.Instance, []conflict.Schedule, error) {
	switch {
	case c.NumEvents <= 0 || c.NumUsers <= 0:
		return nil, nil, fmt.Errorf("dataset: non-positive cardinality |V|=%d |U|=%d", c.NumEvents, c.NumUsers)
	case c.Dim <= 0 || c.MaxT <= 0:
		return nil, nil, fmt.Errorf("dataset: bad attribute space d=%d T=%v", c.Dim, c.MaxT)
	case c.MinDuration <= 0 || c.MaxDuration < c.MinDuration:
		return nil, nil, fmt.Errorf("dataset: bad durations [%v, %v]", c.MinDuration, c.MaxDuration)
	case c.DayLength < c.MaxDuration:
		return nil, nil, fmt.Errorf("dataset: day of %vh cannot hold %vh events", c.DayLength, c.MaxDuration)
	case c.TravelSpeed <= 0:
		return nil, nil, fmt.Errorf("dataset: non-positive travel speed %v", c.TravelSpeed)
	case c.EventCapMax < 1 || c.UserCapMax < 1:
		return nil, nil, fmt.Errorf("dataset: capacity maxima must be >= 1")
	}
	rng := randx.Source(c.Seed)
	attrRng := randx.Sub(rng)
	capRng := randx.Sub(rng)
	schedRng := randx.Sub(rng)

	attrs := func() sim.Vector {
		v := make(sim.Vector, c.Dim)
		for i := range v {
			v[i] = attrRng.Float64() * c.MaxT
		}
		return v
	}

	events := make([]core.Event, c.NumEvents)
	schedules := make([]conflict.Schedule, c.NumEvents)
	for i := range events {
		events[i] = core.Event{
			Attrs: attrs(),
			Cap:   randx.UniformInt(capRng, 1, c.EventCapMax),
		}
		dur := randx.Uniform(schedRng, c.MinDuration, c.MaxDuration)
		start := randx.Uniform(schedRng, 0, c.DayLength-dur)
		schedules[i] = conflict.Schedule{
			Start: start,
			End:   start + dur,
			X:     schedRng.Float64() * c.AreaSize,
			Y:     schedRng.Float64() * c.AreaSize,
		}
	}
	users := make([]core.User, c.NumUsers)
	for i := range users {
		users[i] = core.User{
			Attrs: attrs(),
			Cap:   randx.UniformInt(capRng, 1, c.UserCapMax),
		}
	}

	cf, err := conflict.FromSchedules(schedules, c.TravelSpeed)
	if err != nil {
		return nil, nil, err
	}
	in, err := core.NewInstance(events, users, cf, sim.Euclidean(c.Dim, c.MaxT))
	if err != nil {
		return nil, nil, err
	}
	return in, schedules, nil
}
