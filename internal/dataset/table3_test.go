package dataset

import (
	"testing"

	"github.com/ebsnlab/geacc/internal/core"
)

// TestTable3GridGenerates walks every swept value of TABLE III (at reduced
// cardinality where only sizes are swept) and checks the generator produces
// a valid, solvable instance for each cell. This is the full parameter grid
// of the paper's synthetic evaluation.
func TestTable3GridGenerates(t *testing.T) {
	type mutation struct {
		name   string
		mutate func(*SyntheticConfig)
	}
	var cells []mutation
	for _, v := range []int{20, 50, 100, 200, 500} {
		v := v
		cells = append(cells, mutation{"V", func(c *SyntheticConfig) { c.NumEvents = v / 10 }})
	}
	for _, u := range []int{100, 200, 500, 1000, 2000, 5000} {
		u := u
		cells = append(cells, mutation{"U", func(c *SyntheticConfig) { c.NumUsers = u / 20 }})
	}
	for _, d := range []int{2, 5, 10, 15, 20} {
		d := d
		cells = append(cells, mutation{"d", func(c *SyntheticConfig) { c.Dim = d }})
	}
	for _, dist := range []Distribution{Uniform, Normal, Zipf} {
		dist := dist
		cells = append(cells, mutation{"attrs", func(c *SyntheticConfig) { c.AttrDist = dist }})
	}
	for _, cv := range []int{10, 20, 50, 100, 200} {
		cv := cv
		cells = append(cells, mutation{"cv", func(c *SyntheticConfig) { c.EventCapMax = cv }})
	}
	for _, cu := range []int{2, 4, 6, 8, 10} {
		cu := cu
		cells = append(cells, mutation{"cu", func(c *SyntheticConfig) { c.UserCapMax = cu }})
	}
	for _, capDist := range []Distribution{Uniform, Normal} {
		capDist := capDist
		cells = append(cells, mutation{"caps", func(c *SyntheticConfig) {
			c.EventCapDist = capDist
			c.UserCapDist = capDist
		}})
	}
	for _, cf := range []float64{0, 0.25, 0.5, 0.75, 1} {
		cf := cf
		cells = append(cells, mutation{"cf", func(c *SyntheticConfig) { c.CFRatio = cf }})
	}

	for i, cell := range cells {
		cfg := DefaultSynthetic()
		cfg.NumEvents, cfg.NumUsers = 10, 40 // fast base; cells override
		cfg.Seed = int64(100 + i)
		cell.mutate(&cfg)
		in, err := cfg.Generate()
		if err != nil {
			t.Fatalf("cell %d (%s): %v", i, cell.name, err)
		}
		m := core.Greedy(in)
		if err := core.Validate(in, m); err != nil {
			t.Fatalf("cell %d (%s): %v", i, cell.name, err)
		}
	}
	if len(cells) != 36 {
		t.Fatalf("TABLE III grid has %d cells, expected 36 swept values", len(cells))
	}
}
