package dataset

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/randx"
	"github.com/ebsnlab/geacc/internal/sim"
)

// The paper's real dataset is the Meetup crawl of Liu et al. (KDD'12),
// which is not redistributable. This simulator reproduces the statistics
// the paper reports for it (TABLE II) and its preprocessing (Section V):
//
//   - three cities — Vancouver (225 events, 2012 users), Auckland (37, 569),
//     Singapore (87, 1500);
//   - 20 merged tags as attribute dimensions;
//   - each user/event carries a handful of raw tags drawn from a Zipf-like
//     popularity law with a city-specific topic skew (users in one city
//     cluster around local interests);
//   - attribute value = (#raw tags mapping to the merged tag) / (total raw
//     tags of the entity), i.e. normalized tag counts in [0, 1];
//   - capacities and conflicts are generated, exactly as in the paper,
//     because the crawl carries neither: capacities Uniform [1,50]/[1,4] or
//     Normal(25,12.5)/(2,1), conflict pairs sampled at a target ratio.
//
// Similarity uses the paper's Equation 1 with d = 20, T = 1.

// MeetupTagCount is the number of merged tags (attribute dimensionality).
const MeetupTagCount = 20

// MeetupTags are the merged tag names, in attribute order. They are the 20
// "most popular tags" the paper keeps after merging synonyms.
var MeetupTags = []string{
	"outdoor", "tech", "social", "sports", "music",
	"business", "language", "food", "arts", "health",
	"games", "books", "travel", "photography", "dance",
	"movies", "parenting", "spirituality", "pets", "education",
}

// City describes one extracted city of TABLE II.
type City struct {
	Name      string
	NumEvents int
	NumUsers  int
}

// Cities lists the paper's three extracted cities.
var Cities = []City{
	{Name: "vancouver", NumEvents: 225, NumUsers: 2012},
	{Name: "auckland", NumEvents: 37, NumUsers: 569},
	{Name: "singapore", NumEvents: 87, NumUsers: 1500},
}

// CityByName finds a city case-insensitively.
func CityByName(name string) (City, error) {
	for _, c := range Cities {
		if strings.EqualFold(c.Name, name) {
			return c, nil
		}
	}
	return City{}, fmt.Errorf("dataset: unknown city %q (valid: vancouver, auckland, singapore)", name)
}

// MeetupConfig parameterizes the Meetup simulator.
type MeetupConfig struct {
	// City selects the TABLE II city ("vancouver", "auckland", "singapore").
	City string
	// CapDist draws capacities: Uniform ([1,50] events, [1,4] users) or
	// Normal (25±12.5, 2±1), per TABLE II.
	CapDist Distribution
	// CFRatio is the conflict-set density, swept over {0, .25, .5, .75, 1}
	// in the paper's real-data experiments.
	CFRatio float64
	Seed    int64
}

// DefaultMeetup returns the Auckland setting used in Fig. 4's real-data
// column, with uniform capacities and the default conflict density.
func DefaultMeetup() MeetupConfig {
	return MeetupConfig{City: "auckland", CapDist: Uniform, CFRatio: 0.25, Seed: 1}
}

// Generate builds the simulated city instance.
func (c MeetupConfig) Generate() (*core.Instance, error) {
	city, err := CityByName(c.City)
	if err != nil {
		return nil, err
	}
	if c.CapDist != Uniform && c.CapDist != Normal {
		return nil, fmt.Errorf("dataset: meetup capacities use Uniform or Normal, got %q", c.CapDist)
	}
	if c.CFRatio < 0 || c.CFRatio > 1 {
		return nil, fmt.Errorf("dataset: conflict ratio %v outside [0, 1]", c.CFRatio)
	}
	rng := randx.Source(c.Seed)
	skew := cityTagSkew(randx.Sub(rng))
	attrRng := randx.Sub(rng)
	capRng := randx.Sub(rng)
	cfRng := randx.Sub(rng)

	events := make([]core.Event, city.NumEvents)
	for i := range events {
		events[i] = core.Event{
			Attrs: tagVector(attrRng, skew),
			Cap:   c.capacity(capRng, 50, 25, 12.5),
		}
	}
	users := make([]core.User, city.NumUsers)
	for i := range users {
		users[i] = core.User{
			Attrs: tagVector(attrRng, skew),
			Cap:   c.capacity(capRng, 4, 2, 1),
		}
	}
	cf := conflict.Random(cfRng, city.NumEvents, c.CFRatio)
	return core.NewInstance(events, users, cf, sim.Euclidean(MeetupTagCount, 1))
}

func (c MeetupConfig) capacity(rng *rand.Rand, max int, mu, sigma float64) int {
	if c.CapDist == Normal {
		return randx.NormalInt(rng, mu, sigma, 1, max)
	}
	return randx.UniformInt(rng, 1, max)
}

// cityTagSkew builds the city's tag popularity: a global Zipf-ish rank decay
// modulated by city-specific multipliers, normalized to a distribution.
func cityTagSkew(rng *rand.Rand) []float64 {
	weights := make([]float64, MeetupTagCount)
	var total float64
	for i := range weights {
		// Rank decay ~ 1/(rank+1): popular tags dominate, as observed for
		// user-generated tags. The multiplier in [0.25, 4] makes each
		// city's interest profile distinct.
		base := 1.0 / float64(i+1)
		mult := 0.25 + 3.75*rng.Float64()
		weights[i] = base * mult
		total += weights[i]
	}
	for i := range weights {
		weights[i] /= total
	}
	return weights
}

// tagVector simulates one entity's preprocessing of Section V: draw a
// handful of raw tags from the city's tag distribution and normalize counts
// by the number of raw tags.
func tagVector(rng *rand.Rand, skew []float64) sim.Vector {
	numTags := 3 + rng.Intn(10) // entities carry 3-12 raw tags
	counts := make([]int, MeetupTagCount)
	for i := 0; i < numTags; i++ {
		counts[sampleIndex(rng, skew)]++
	}
	v := make(sim.Vector, MeetupTagCount)
	for i, n := range counts {
		v[i] = float64(n) / float64(numTags)
	}
	return v
}

// sampleIndex draws an index from a normalized weight vector.
func sampleIndex(rng *rand.Rand, weights []float64) int {
	x := rng.Float64()
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
