package dataset

import (
	"fmt"

	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/randx"
	"github.com/ebsnlab/geacc/internal/sim"
)

// ClusteredConfig generates multi-community GEACC instances: the workload
// shape of the decomposition layer (internal/decomp) and of multi-event
// social-event scheduling. Entities are assigned round-robin to Communities
// attribute clusters; each cluster owns a disjoint block of BlockDim
// coordinates and every entity draws positive values only inside its
// cluster's block. Under cosine similarity that makes cross-cluster
// similarity exactly 0 (disjoint supports have zero dot product) and
// intra-cluster similarity strictly positive, so the positive-similarity
// graph splits into exactly one connected component per non-empty cluster.
// Conflicts are sampled intra-cluster only, preserving the split.
type ClusteredConfig struct {
	NumEvents int // |V|; default 100
	NumUsers  int // |U|; default 1000

	Communities int // number of clusters k; default 8
	BlockDim    int // per-cluster attribute block width; default 8

	// Capacities: Uniform over [1, max], as in the TABLE III defaults.
	EventCapMax int // default 50
	UserCapMax  int // default 4

	// CFRatio is the intra-cluster conflict density: per cluster,
	// round(CFRatio · m·(m−1)/2) conflicting pairs over its m events.
	CFRatio float64 // default 0.25

	// BridgeFrac, in [0, 1], makes roughly that fraction of users "bridge"
	// users: in addition to their home cluster's block they draw small
	// positive values (scaled by BridgeWeight) in the NEXT cluster's block,
	// giving them weak positive similarity to that cluster's events. Any
	// positive fraction chains the clusters into a ring, so the
	// positive-similarity graph forms ONE giant component — the workload of
	// the approximate-sharding layer (internal/partition). 0 (the default)
	// keeps clusters exactly disjoint and the generated instances
	// bit-identical to before the flag existed.
	BridgeFrac float64
	// BridgeWeight scales the bridge block's values relative to the home
	// block; <= 0 means 0.02, small enough that cross-cluster similarities
	// stay far below intra-cluster ones (low-drift sharding).
	BridgeWeight float64

	Seed int64
}

// DefaultClustered returns a balanced 8-community workload.
func DefaultClustered() ClusteredConfig {
	return ClusteredConfig{
		NumEvents:   100,
		NumUsers:    1000,
		Communities: 8,
		BlockDim:    8,
		EventCapMax: 50,
		UserCapMax:  4,
		CFRatio:     0.25,
		Seed:        1,
	}
}

// Dim returns the total attribute dimensionality, Communities · BlockDim.
func (c ClusteredConfig) Dim() int { return c.Communities * c.BlockDim }

// Generate builds the clustered instance. The similarity function is
// sim.Cosine(); round-robin assignment puts event i and user j in clusters
// i mod k and j mod k respectively.
func (c ClusteredConfig) Generate() (*core.Instance, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	rng := randx.Source(c.Seed)
	attrRng := randx.Sub(rng)
	capRng := randx.Sub(rng)
	cfRng := randx.Sub(rng)

	dim := c.Dim()
	// sampleAttrs draws one vector for cluster k: components of the
	// cluster's block uniform in [0.1, 1] (bounded away from 0 so no
	// intra-cluster pair degenerates to zero similarity), all other
	// coordinates zero.
	sampleAttrs := func(k int) sim.Vector {
		v := make(sim.Vector, dim)
		for i := k * c.BlockDim; i < (k+1)*c.BlockDim; i++ {
			v[i] = 0.1 + 0.9*attrRng.Float64()
		}
		return v
	}

	events := make([]core.Event, c.NumEvents)
	for i := range events {
		events[i] = core.Event{
			Attrs: sampleAttrs(i % c.Communities),
			Cap:   randx.UniformInt(capRng, 1, c.EventCapMax),
		}
	}
	users := make([]core.User, c.NumUsers)
	bridgeStride := 0
	if c.BridgeFrac > 0 {
		bridgeStride = int(1/c.BridgeFrac + 0.5)
		if bridgeStride < 1 {
			bridgeStride = 1
		}
	}
	bridgeWeight := c.BridgeWeight
	if bridgeWeight <= 0 {
		bridgeWeight = 0.02
	}
	for i := range users {
		attrs := sampleAttrs(i % c.Communities)
		// Bridge selection goes by the user's rank WITHIN its community
		// (i/k), not by raw index: a raw-index stride sharing a factor with
		// k would bridge only a subgroup of communities and leave the rest
		// disconnected. Rank 0 of every community always bridges, so each
		// cluster chains to its successor and one giant component forms.
		// Extra draws happen only for bridge users, keeping BridgeFrac == 0
		// instances bit-identical to pre-bridge generations.
		if bridgeStride > 0 && (i/c.Communities)%bridgeStride == 0 && c.Communities > 1 {
			next := (i%c.Communities + 1) % c.Communities
			for d := next * c.BlockDim; d < (next+1)*c.BlockDim; d++ {
				attrs[d] = bridgeWeight * (0.1 + 0.9*attrRng.Float64())
			}
		}
		users[i] = core.User{
			Attrs: attrs,
			Cap:   randx.UniformInt(capRng, 1, c.UserCapMax),
		}
	}

	// Intra-cluster conflicts: sample pairs inside each cluster's event
	// list at the requested density, then map local pair indices back to
	// event ids.
	cf := conflict.New(c.NumEvents)
	for k := 0; k < c.Communities; k++ {
		var members []int
		for v := k; v < c.NumEvents; v += c.Communities {
			members = append(members, v)
		}
		total := len(members) * (len(members) - 1) / 2
		want := int(c.CFRatio*float64(total) + 0.5)
		for _, p := range randx.SamplePairs(cfRng, len(members), want) {
			cf.Add(members[p[0]], members[p[1]])
		}
	}
	return core.NewInstance(events, users, cf, sim.Cosine())
}

func (c ClusteredConfig) validate() error {
	switch {
	case c.NumEvents <= 0 || c.NumUsers <= 0:
		return fmt.Errorf("dataset: non-positive cardinality |V|=%d |U|=%d", c.NumEvents, c.NumUsers)
	case c.Communities < 1:
		return fmt.Errorf("dataset: need at least one community, got %d", c.Communities)
	case c.BlockDim < 1:
		return fmt.Errorf("dataset: non-positive block width %d", c.BlockDim)
	case c.EventCapMax < 1 || c.UserCapMax < 1:
		return fmt.Errorf("dataset: capacity maxima must be >= 1")
	case c.CFRatio < 0 || c.CFRatio > 1:
		return fmt.Errorf("dataset: conflict ratio %v outside [0, 1]", c.CFRatio)
	case c.BridgeFrac < 0 || c.BridgeFrac > 1:
		return fmt.Errorf("dataset: bridge fraction %v outside [0, 1]", c.BridgeFrac)
	}
	return nil
}
