// Package geacc solves the Global Event-participant Arrangement with
// Conflict and Capacity (GEACC) problem of She, Tong, Chen and Cao,
// "Conflict-Aware Event-Participant Arrangement" (ICDE 2015).
//
// Given events with attendee capacities, users with arrangement capacities,
// pairwise event conflicts, and an interestingness (similarity) measure
// between events and users, GEACC asks for the assignment maximizing total
// interestingness subject to the capacity and conflict constraints. The
// problem is NP-hard; this package provides the paper's algorithms:
//
//   - Greedy (Greedy-GEACC): near-linear heap-based greedy,
//     1/(1+α) approximation where α = max user capacity. The paper's (and
//     this package's) recommended default.
//   - MinCostFlow (MinCostFlow-GEACC): solves the conflict-free relaxation
//     exactly by minimum-cost flow, then resolves conflicts; 1/α
//     approximation, but quartic time.
//   - Exact (Prune-GEACC): branch-and-bound with the Lemma 6 bound, warm
//     started by Greedy; optimal, exponential worst case — small instances.
//   - RandomV / RandomU: the evaluation's random baselines.
//
// # Quick start
//
//	events := []geacc.Event{{Attrs: []float64{1, 2}, Cap: 10}, ...}
//	users := []geacc.User{{Attrs: []float64{1, 3}, Cap: 2}, ...}
//	p, err := geacc.NewProblem(events, users,
//		geacc.WithEuclideanSimilarity(2, 10),
//		geacc.WithConflictPairs([][2]int{{0, 1}}))
//	m, err := p.Solve(geacc.Greedy)
//	fmt.Println(m.MaxSum(), m.Pairs())
//
// Conflicts can be given explicitly, sampled at a density, or derived from
// event schedules (time intervals plus venue travel times). See the
// examples/ directory for complete programs.
package geacc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"github.com/ebsnlab/geacc/internal/conflict"
	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/decomp"
	"github.com/ebsnlab/geacc/internal/partition"
	"github.com/ebsnlab/geacc/internal/sim"
	"github.com/ebsnlab/geacc/internal/solvecache"
)

// Event is an event: its attribute vector and attendee capacity.
// For matrix-similarity problems Attrs may be nil.
type Event = core.Event

// User is a participant: attribute vector and the maximum number of events
// they can be arranged to.
type User = core.User

// Assignment is one matched (event, user) pair with its interestingness.
type Assignment = core.Assignment

// Matching is a feasible event-participant arrangement.
type Matching = core.Matching

// Schedule describes when and where an event happens, for deriving conflicts.
type Schedule = conflict.Schedule

// Algorithm selects a solver.
type Algorithm int

// The available solvers.
const (
	// Greedy is Greedy-GEACC: the recommended default.
	Greedy Algorithm = iota
	// MinCostFlow is MinCostFlow-GEACC.
	MinCostFlow
	// Exact is Prune-GEACC; exponential worst case, use on small instances.
	Exact
	// RandomV and RandomU are the paper's baselines.
	RandomV
	RandomU
)

// String returns the algorithm's registry name.
func (a Algorithm) String() string {
	switch a {
	case Greedy:
		return "greedy"
	case MinCostFlow:
		return "mincostflow"
	case Exact:
		return "exact"
	case RandomV:
		return "random-v"
	case RandomU:
		return "random-u"
	default:
		return "unknown"
	}
}

// Problem is a GEACC instance ready to solve.
type Problem struct {
	in *core.Instance
	// simID is the canonical similarity identity for solve-cache keying
	// ("euclidean/4/100", "cosine", ...); empty for custom similarity
	// functions, whose content the cache cannot hash (such problems always
	// solve fresh). Matrix problems are self-describing and need no id.
	simID string
}

// Option configures NewProblem.
type Option func(*problemConfig) error

type problemConfig struct {
	simFunc      sim.Func
	simID        string
	matrix       [][]float64
	pairs        [][2]int
	hasSchedules bool
	schedules    []conflict.Schedule
	speed        float64
}

// WithEuclideanSimilarity uses the paper's Equation 1 over d-dimensional
// attributes in [0, maxT].
func WithEuclideanSimilarity(d int, maxT float64) Option {
	return func(c *problemConfig) error {
		if d <= 0 || maxT <= 0 {
			return fmt.Errorf("geacc: euclidean similarity needs d > 0 and maxT > 0")
		}
		c.simFunc = sim.Euclidean(d, maxT)
		c.simID = fmt.Sprintf("euclidean/%d/%v", d, maxT)
		return nil
	}
}

// WithCosineSimilarity uses cosine similarity over the attribute vectors.
func WithCosineSimilarity() Option {
	return func(c *problemConfig) error {
		c.simFunc = sim.Cosine()
		c.simID = "cosine"
		return nil
	}
}

// WithSimilarityFunc plugs in a custom similarity; it must be symmetric and
// return values in [0, 1].
func WithSimilarityFunc(f func(a, b []float64) float64) Option {
	return func(c *problemConfig) error {
		if f == nil {
			return errors.New("geacc: nil similarity function")
		}
		c.simFunc = func(a, b sim.Vector) float64 { return f(a, b) }
		c.simID = "" // opaque: uncacheable
		return nil
	}
}

// WithSimilarityMatrix fixes interestingness values explicitly:
// matrix[v][u] ∈ [0, 1]. Attribute vectors are then ignored.
func WithSimilarityMatrix(matrix [][]float64) Option {
	return func(c *problemConfig) error {
		c.matrix = matrix
		return nil
	}
}

// WithConflictPairs declares conflicting event pairs by index.
func WithConflictPairs(pairs [][2]int) Option {
	return func(c *problemConfig) error {
		c.pairs = append(c.pairs, pairs...)
		return nil
	}
}

// WithSchedules derives conflicts from event schedules: two events conflict
// when their intervals overlap or the gap is shorter than the venue travel
// time at the given speed. len(schedules) must equal the number of events.
func WithSchedules(schedules []Schedule, travelSpeed float64) Option {
	return func(c *problemConfig) error {
		if travelSpeed <= 0 {
			return fmt.Errorf("geacc: non-positive travel speed %v", travelSpeed)
		}
		c.hasSchedules = true
		c.schedules = schedules
		c.speed = travelSpeed
		return nil
	}
}

// NewProblem builds a GEACC instance. Exactly one similarity source is
// required (a similarity function option or WithSimilarityMatrix); conflict
// options may be combined (their union applies).
func NewProblem(events []Event, users []User, opts ...Option) (*Problem, error) {
	var cfg problemConfig
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.simFunc != nil && cfg.matrix != nil {
		return nil, errors.New("geacc: both a similarity function and a matrix given")
	}
	if cfg.simFunc == nil && cfg.matrix == nil {
		return nil, errors.New("geacc: a similarity function or matrix is required")
	}

	cf := conflict.New(len(events))
	for _, p := range cfg.pairs {
		if p[0] < 0 || p[0] >= len(events) || p[1] < 0 || p[1] >= len(events) {
			return nil, fmt.Errorf("geacc: conflict pair %v out of range", p)
		}
		cf.Add(p[0], p[1])
	}
	if cfg.hasSchedules {
		if len(cfg.schedules) != len(events) {
			return nil, fmt.Errorf("geacc: %d schedules for %d events", len(cfg.schedules), len(events))
		}
		derived, err := conflict.FromSchedules(cfg.schedules, cfg.speed)
		if err != nil {
			return nil, err
		}
		for _, p := range derived.Pairs() {
			cf.Add(p[0], p[1])
		}
	}

	var in *core.Instance
	var err error
	if cfg.matrix != nil {
		in, err = core.NewMatrixInstance(events, users, cf, cfg.matrix)
	} else {
		in, err = core.NewInstance(events, users, cf, cfg.simFunc)
	}
	if err != nil {
		return nil, err
	}
	return &Problem{in: in, simID: cfg.simID}, nil
}

// NumEvents returns |V|.
func (p *Problem) NumEvents() int { return p.in.NumEvents() }

// NumUsers returns |U|.
func (p *Problem) NumUsers() int { return p.in.NumUsers() }

// Similarity returns the interestingness value of event v for user u.
func (p *Problem) Similarity(v, u int) float64 { return p.in.Similarity(v, u) }

// Conflicting reports whether events i and j conflict.
func (p *Problem) Conflicting(i, j int) bool { return p.in.Conflicting(i, j) }

// SolveOptions tunes Solve.
type SolveOptions struct {
	// Seed drives the random baselines (RandomV/RandomU). Deterministic
	// algorithms ignore it.
	Seed int64
	// ExactNodeLimit bounds Prune-GEACC's search; 0 means unlimited. When
	// the limit trips, Solve returns the best matching found along with
	// ErrBudgetExceeded. Under Decompose the limit applies per component.
	ExactNodeLimit int64
	// Decompose shards the instance along the connected components of its
	// conflict/similarity union graph and solves the components in parallel
	// (see internal/decomp). The result is exact for Exact and keeps the
	// paper approximation ratios for the other algorithms; on multi-community
	// instances it is substantially faster than a monolithic solve.
	Decompose bool
	// DecomposeWorkers bounds the component worker pool; <= 0 means
	// GOMAXPROCS. The matching is identical for any worker count.
	DecomposeWorkers int
	// DisableCache skips the package's content-addressed solve memo cache
	// for this call. The cache only ever serves results bit-identical to a
	// fresh solve (see internal/solvecache), so disabling it is for
	// benchmarking, not correctness.
	DisableCache bool
	// ApproxShard, when non-nil, enables approximate sharding of oversized
	// components (implies Decompose): components whose |V|·|U| exceeds
	// MaxArea split into balanced sub-shards with a bounded-drift merge
	// (see internal/partition). Off (nil), results are bit-identical to
	// the plain solve.
	ApproxShard *ApproxShardOptions
}

// ApproxShardOptions tunes the approximate sharding of giant components.
// Zero fields take the internal/partition defaults.
type ApproxShardOptions struct {
	// MaxArea is the per-shard |V|·|U| target and the threshold above
	// which a component is sharded at all; <= 0 means the default (20000).
	MaxArea int64
	// Strategy is "modularity" (default) or "bfs".
	Strategy string
	// DriftBudget is the hard cap on the bounded relative MaxSum loss per
	// sharded component; a breach falls back to the monolithic component
	// solve. <= 0 means the default (0.01).
	DriftBudget float64
}

// facadeCache memoizes Solve results across Problem values by content
// hash: rebuilding an identical problem and solving it again is a hit.
// Custom similarity functions are uncacheable and always solve fresh.
var facadeCache = solvecache.New(256)

// ErrBudgetExceeded reports that Exact hit its node limit; the returned
// matching is feasible but possibly sub-optimal.
var ErrBudgetExceeded = core.ErrNodeLimit

// Solve runs the chosen algorithm with default options.
func (p *Problem) Solve(algo Algorithm) (*Matching, error) {
	return p.SolveOpts(algo, SolveOptions{})
}

// SolveOpts runs the chosen algorithm.
func (p *Problem) SolveOpts(algo Algorithm, opt SolveOptions) (*Matching, error) {
	var key solvecache.Key
	cacheable := false
	if !opt.DisableCache {
		spec := solvecache.KeySpec{
			Algo:      algo.String(),
			Seed:      opt.Seed,
			SimID:     p.simID,
			Decompose: opt.Decompose,
			Workers:   opt.DecomposeWorkers,
			NodeLimit: opt.ExactNodeLimit,
		}
		if as := opt.ApproxShard; as != nil {
			// Sharded merges differ from plain decomposed solves, and every
			// knob changes the split — all of it keys.
			sh := shardOptions(*as)
			spec.Decompose = true
			spec.ApproxShard = true
			spec.ShardMaxArea = sh.MaxArea
			spec.ShardStrategy = string(sh.Strategy)
			spec.ShardDriftBudget = sh.DriftBudget
		}
		key, cacheable = solvecache.InstanceKey(p.in, spec)
		if cacheable {
			if v, ok := facadeCache.Get(key); ok {
				return v.(*Matching).Clone(), nil
			}
		}
	}
	m, err := p.solveOpts(algo, opt)
	if err == nil && cacheable && m != nil {
		facadeCache.Put(key, m.Clone())
	}
	return m, err
}

// shardOptions maps the facade's ApproxShardOptions onto the partition
// layer's option struct, normalizing defaults.
func shardOptions(as ApproxShardOptions) partition.Options {
	return partition.Options{
		MaxArea:     as.MaxArea,
		Strategy:    partition.Strategy(as.Strategy),
		DriftBudget: as.DriftBudget,
	}.Normalized()
}

// solveOpts is SolveOpts without the memo cache.
func (p *Problem) solveOpts(algo Algorithm, opt SolveOptions) (*Matching, error) {
	if opt.Decompose || opt.ApproxShard != nil {
		name := algo.String()
		if _, err := core.LookupSolver(name); err != nil {
			return nil, fmt.Errorf("geacc: unknown algorithm %d", int(algo))
		}
		dopt := decomp.Options{
			Workers:        opt.DecomposeWorkers,
			Seed:           opt.Seed,
			ExactNodeLimit: opt.ExactNodeLimit,
		}
		if as := opt.ApproxShard; as != nil {
			sh := shardOptions(*as)
			if _, err := partition.ParseStrategy(as.Strategy); err != nil {
				return nil, err
			}
			dopt.Shard = &sh
		}
		m, _, err := decomp.SolveContext(context.Background(), name, p.in, dopt)
		return m, err
	}
	switch algo {
	case Greedy:
		return core.Greedy(p.in), nil
	case MinCostFlow:
		return core.MinCostFlow(p.in).Matching, nil
	case Exact:
		m, _, err := core.ExactOpts(p.in, core.ExactOptions{NodeLimit: opt.ExactNodeLimit})
		return m, err
	case RandomV:
		return core.RandomV(p.in, rand.New(rand.NewSource(opt.Seed))), nil
	case RandomU:
		return core.RandomU(p.in, rand.New(rand.NewSource(opt.Seed))), nil
	default:
		return nil, fmt.Errorf("geacc: unknown algorithm %d", int(algo))
	}
}

// UpperBound returns MaxSum(M∅), the optimum of the conflict-free
// relaxation — an upper bound on the constrained optimum (Corollary 1).
// Useful for judging how close an approximate matching is.
func (p *Problem) UpperBound() float64 {
	return core.RelaxedUpperBound(p.in)
}

// Validate checks that a matching is feasible for this problem.
func (p *Problem) Validate(m *Matching) error {
	return core.Validate(p.in, m)
}
