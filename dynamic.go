package geacc

import (
	"github.com/ebsnlab/geacc/internal/core"
	"github.com/ebsnlab/geacc/internal/sim"
)

// Arranger maintains an arrangement under online arrival of events and
// users and event cancellations — the operational extension of the paper's
// static GEACC problem. Arrivals are placed greedily against the current
// state; Rebalance re-solves with batch Greedy-GEACC and adopts the result
// when it improves. Every operation preserves feasibility.
//
//	arr, err := geacc.NewArranger(geacc.EuclideanSimilarity(2, 10))
//	if err != nil {
//		// Only a nil similarity function fails.
//	}
//	v, err := arr.AddEvent(geacc.Event{Attrs: []float64{1, 2}, Cap: 20}, nil)
//	u, err := arr.AddUser(geacc.User{Attrs: []float64{1, 3}, Cap: 2})
//	fmt.Println(arr.UserEvents(u)) // [v] if feasible
//
// See ExampleNewArranger for a runnable version. geacc-server exposes the
// same lifecycle over HTTP as named persistent instances (docs/SERVICE.md).
type Arranger = core.Arranger

// SimilarityFunc is a pluggable similarity for NewArranger; see
// EuclideanSimilarity and CosineSimilarity.
type SimilarityFunc = sim.Func

// EuclideanSimilarity is the paper's Equation 1 over d-dimensional
// attributes in [0, maxT], for use with NewArranger.
func EuclideanSimilarity(d int, maxT float64) SimilarityFunc {
	return sim.Euclidean(d, maxT)
}

// CosineSimilarity is cosine similarity clamped to [0, 1], for use with
// NewArranger.
func CosineSimilarity() SimilarityFunc {
	return sim.Cosine()
}

// NewArranger returns an empty dynamic arrangement using similarity f.
func NewArranger(f SimilarityFunc) (*Arranger, error) {
	return core.NewArranger(f)
}
