package geacc

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example program end to end and spot
// checks its output — the examples are documentation and must not rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples compile+run is slow")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	cases := map[string][]string{
		"./examples/quickstart": {"MaxSum = 4.39", "MaxSum = 4.28", "MaxSum = 4.13"},
		"./examples/conference": {"optimal arrangement", "greedy approximation"},
		"./examples/meetup":     {"city weekend", "best-recruiting events", "sample itineraries"},
		"./examples/comparison": {"|V|=20 |U|=200", "greedy", "mincostflow"},
		"./examples/live":       {"week done", "feasible"},
	}
	for path, wants := range cases {
		path, wants := path, wants
		t.Run(strings.TrimPrefix(path, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", path).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", path, err, out)
			}
			for _, want := range wants {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s output missing %q\n%s", path, want, out)
				}
			}
		})
	}
}
