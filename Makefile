# GEACC — conflict-aware event-participant arrangement.
# `make help` lists targets.

GO        ?= go
PKGS      := ./...
# Packages whose concurrency is exercised hardest; `make race` runs them
# under the race detector (the full suite under -race is `make race-all`).
RACE_PKGS := ./internal/obs ./internal/server ./internal/core ./internal/decomp ./internal/store ./internal/solvecache ./internal/partition
BENCH     ?= .
BENCH_FLAGS := -benchmem -benchtime=1x

.PHONY: build test test-service smoke-probes load-smoke race race-all vet bench bench-json bench-compare bench-server cover clean run-server help

## build: compile every package and the command-line tools
build:
	$(GO) build $(PKGS)

## test: run the full test suite (tier-1 gate, with go vet's default checks)
test:
	$(GO) test $(PKGS)

## test-service: service crash-recovery e2e (build binary, stream deltas, kill -9, restart, verify)
test-service:
	GEACC_E2E=1 $(GO) test -run TestServiceE2E -v ./cmd/geacc-server

## smoke-probes: boot a real geacc-server and exercise healthz/readyz/statusz/metrics/stats once
smoke-probes:
	./scripts/smoke_probes.sh

## load-smoke: ~30s of closed-loop load (solves + delta streams) against a real geacc-server; fails on any 5xx
load-smoke:
	./scripts/load_smoke.sh

## race: race-detector pass over the concurrency-heavy packages
race:
	$(GO) test -race $(RACE_PKGS)

## race-all: the full suite under the race detector (slow)
race-all:
	$(GO) test -race $(PKGS)

## vet: static analysis; must stay clean
vet:
	$(GO) vet $(PKGS)

## bench: run benchmarks once through (BENCH=<regexp> to filter)
bench:
	$(GO) test -run=^$$ -bench=$(BENCH) $(BENCH_FLAGS) $(PKGS)

## bench-json: solver latency+quality snapshot on pinned instances -> BENCH_solvers.json
bench-json:
	$(GO) run ./cmd/geacc-bench -reps 3 -solvers-json BENCH_solvers.json

## bench-compare: rerun both pinned sets (solver ns/op + end-to-end server p99/throughput) and diff against the committed snapshots (fails on >20% regressions)
bench-compare:
	$(GO) run ./cmd/geacc-bench -reps 3 -compare BENCH_solvers.json
	$(GO) run ./cmd/geacc-load -compare BENCH_server.json

## bench-server: end-to-end load snapshot (self-hosted server, closed loop) -> BENCH_server.json
bench-server:
	$(GO) run ./cmd/geacc-load -pin BENCH_server.json

## cover: full suite with a coverage summary
cover:
	$(GO) test -cover $(PKGS)

## run-server: start geacc-server with the diagnostics listener on :6060
run-server:
	$(GO) run ./cmd/geacc-server -addr :8080 -debug-addr 127.0.0.1:6060

## clean: drop build artifacts and cached test results
clean:
	$(GO) clean $(PKGS)
	rm -f geacc-server geacc-solve geacc-gen geacc-bench

## help: list targets
help:
	@grep -E '^## ' $(MAKEFILE_LIST) | sed 's/^## /  /'
