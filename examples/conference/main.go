// Conference planning: arrange attendees into capacity-limited sessions
// whose conflicts are *derived* from the timetable and the walking time
// between rooms — the semantics the paper's introduction motivates.
//
// Sessions run in two buildings 900 m apart; walking speed is 3 km/h, so
// back-to-back sessions across buildings conflict unless there is at least
// an 18-minute gap. Each attendee has a topic-interest vector; each session
// has a topic profile. The exact algorithm is viable at this size.
//
// Run with: go run ./examples/conference
package main

import (
	"fmt"
	"log"

	"github.com/ebsnlab/geacc"
)

type session struct {
	name     string
	topics   []float64 // systems, ML, theory, security
	cap      int
	start    float64 // hours since 9:00
	duration float64
	building float64 // x-coordinate in km
}

func main() {
	sessions := []session{
		{"storage-engines", []float64{1, 0.1, 0.2, 0.1}, 3, 0, 1, 0},
		{"learned-indexes", []float64{0.7, 0.9, 0.3, 0}, 2, 0, 1, 0.9},
		{"query-opt-theory", []float64{0.4, 0.2, 1, 0}, 2, 1, 1, 0.9},
		{"db-security", []float64{0.5, 0, 0.2, 1}, 2, 1.05, 1, 0}, // 3 min after hour 1
		{"vector-search", []float64{0.6, 1, 0.2, 0}, 3, 2.5, 1, 0.9},
	}
	attendees := []struct {
		name      string
		interests []float64
		cap       int
	}{
		{"alice", []float64{1, 0.2, 0.1, 0.3}, 2},
		{"bob", []float64{0.3, 1, 0.2, 0}, 2},
		{"carol", []float64{0.2, 0.1, 1, 0.1}, 3},
		{"dave", []float64{0.8, 0.1, 0.1, 1}, 2},
		{"erin", []float64{0.5, 0.9, 0.5, 0.2}, 3},
		{"frank", []float64{0.9, 0.6, 0, 0.4}, 1},
	}

	events := make([]geacc.Event, len(sessions))
	schedules := make([]geacc.Schedule, len(sessions))
	for i, s := range sessions {
		events[i] = geacc.Event{Attrs: s.topics, Cap: s.cap}
		schedules[i] = geacc.Schedule{
			Start: s.start,
			End:   s.start + s.duration,
			X:     s.building,
		}
	}
	users := make([]geacc.User, len(attendees))
	for i, a := range attendees {
		users[i] = geacc.User{Attrs: a.interests, Cap: a.cap}
	}

	problem, err := geacc.NewProblem(events, users,
		geacc.WithEuclideanSimilarity(4, 1),
		geacc.WithSchedules(schedules, 3), // walking: 3 km/h
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("derived conflicts (overlap or too far to walk in the gap):")
	for i := range sessions {
		for j := i + 1; j < len(sessions); j++ {
			if problem.Conflicting(i, j) {
				fmt.Printf("    %s <-> %s\n", sessions[i].name, sessions[j].name)
			}
		}
	}

	m, err := problem.Solve(geacc.Exact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal arrangement (MaxSum %.3f, upper bound %.3f):\n",
		m.MaxSum(), problem.UpperBound())
	for u, a := range attendees {
		fmt.Printf("    %-6s ->", a.name)
		for _, v := range m.UserEvents(u) {
			fmt.Printf(" %s", sessions[v].name)
		}
		if len(m.UserEvents(u)) == 0 {
			fmt.Print(" (no session)")
		}
		fmt.Println()
	}

	// Quick comparison against the greedy approximation.
	g, err := problem.Solve(geacc.Greedy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngreedy approximation: MaxSum %.3f (%.1f%% of optimal)\n",
		g.MaxSum(), 100*g.MaxSum()/m.MaxSum())
}
