// Meetup-style EBSN: a city weekend of events, users with tag-based interest
// profiles, and conflicts from overlapping timetables plus cross-town travel
// — a small self-contained version of the paper's real-data scenario.
//
// Events and users carry normalized tag-count vectors over 8 interest tags
// (the paper merges raw Meetup tags into 20 such attributes). Similarity is
// the paper's Equation 1 with T = 1. Greedy-GEACC arranges the whole city at
// once, globally — unlike per-event recommendation, no user is double-booked
// into conflicting events and no event oversells its capacity.
//
// Run with: go run ./examples/meetup
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"github.com/ebsnlab/geacc"
)

var tags = []string{"outdoor", "tech", "social", "sports", "music", "food", "arts", "games"}

// tagVector draws k raw tags from a popularity-skewed law and normalizes
// counts, mimicking the paper's preprocessing of Meetup tags.
func tagVector(rng *rand.Rand, skew []float64) []float64 {
	k := 3 + rng.Intn(6)
	v := make([]float64, len(tags))
	for i := 0; i < k; i++ {
		x := rng.Float64()
		for t, w := range skew {
			if x -= w; x < 0 {
				v[t] += 1 / float64(k)
				break
			}
		}
	}
	return v
}

func main() {
	rng := rand.New(rand.NewSource(2015)) // ICDE 2015
	skew := []float64{0.25, 0.2, 0.15, 0.12, 0.1, 0.08, 0.06, 0.04}

	const numEvents, numUsers = 30, 200
	events := make([]geacc.Event, numEvents)
	schedules := make([]geacc.Schedule, numEvents)
	for i := range events {
		events[i] = geacc.Event{Attrs: tagVector(rng, skew), Cap: 5 + rng.Intn(20)}
		start := 8 + rng.Float64()*10 // sometime between 08:00 and 18:00
		schedules[i] = geacc.Schedule{
			Start: start,
			End:   start + 1 + rng.Float64()*2,
			X:     rng.Float64() * 25, // 25 km wide city
			Y:     rng.Float64() * 25,
		}
	}
	users := make([]geacc.User, numUsers)
	for i := range users {
		users[i] = geacc.User{Attrs: tagVector(rng, skew), Cap: 1 + rng.Intn(3)}
	}

	problem, err := geacc.NewProblem(events, users,
		geacc.WithEuclideanSimilarity(len(tags), 1),
		geacc.WithSchedules(schedules, 25), // driving: 25 km/h across town
	)
	if err != nil {
		log.Fatal(err)
	}

	m, err := problem.Solve(geacc.Greedy)
	if err != nil {
		log.Fatal(err)
	}
	if err := problem.Validate(m); err != nil {
		log.Fatal(err)
	}

	conflicts := 0
	for i := 0; i < numEvents; i++ {
		for j := i + 1; j < numEvents; j++ {
			if problem.Conflicting(i, j) {
				conflicts++
			}
		}
	}
	fmt.Printf("city weekend: %d events, %d users, %d conflicting event pairs\n",
		numEvents, numUsers, conflicts)
	fmt.Printf("greedy arrangement: %d assignments, MaxSum %.2f (upper bound %.2f)\n\n",
		m.Size(), m.MaxSum(), problem.UpperBound())

	// Event fill rates: how well did each event recruit?
	type fill struct {
		event          int
		attendees, cap int
	}
	fills := make([]fill, numEvents)
	for v := range fills {
		fills[v] = fill{v, len(m.EventUsers(v)), events[v].Cap}
	}
	sort.Slice(fills, func(i, j int) bool { return fills[i].attendees > fills[j].attendees })
	fmt.Println("best-recruiting events:")
	for _, f := range fills[:5] {
		top := tags[argmax(events[f.event].Attrs)]
		fmt.Printf("    event %2d (%-7s) %2d/%2d attendees, %s-%s\n",
			f.event, top, f.attendees, f.cap,
			clock(schedules[f.event].Start), clock(schedules[f.event].End))
	}

	// A few user itineraries: conflict-free by construction.
	fmt.Println("\nsample itineraries:")
	shown := 0
	for u := 0; u < numUsers && shown < 5; u++ {
		evs := m.UserEvents(u)
		if len(evs) < 2 {
			continue
		}
		fmt.Printf("    user %3d:", u)
		for _, v := range evs {
			fmt.Printf("  [%s-%s %s]", clock(schedules[v].Start), clock(schedules[v].End),
				tags[argmax(events[v].Attrs)])
		}
		fmt.Println()
		shown++
	}
}

func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

func clock(h float64) string {
	hh := int(h)
	mm := int((h - float64(hh)) * 60)
	return fmt.Sprintf("%02d:%02d", hh, mm)
}
