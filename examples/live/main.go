// Live EBSN simulation: events and users arrive over a week, some events
// get cancelled, and the platform keeps a feasible arrangement at all times
// — the operational extension of the paper's static GEACC snapshot.
//
// Arrivals are placed greedily as they come; every night the platform runs
// a Rebalance (batch Greedy-GEACC over the current state) and adopts the
// result when it improves the arrangement. The printout tracks how far the
// online arrangement drifts from batch quality and how much each rebalance
// recovers.
//
// Run with: go run ./examples/live
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/ebsnlab/geacc"
)

const dim = 6

func main() {
	rng := rand.New(rand.NewSource(7))
	arr, err := geacc.NewArranger(geacc.EuclideanSimilarity(dim, 1))
	if err != nil {
		log.Fatal(err)
	}
	vec := func() []float64 {
		v := make([]float64, dim)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v
	}

	fmt.Println("day  events  users  arranged-pairs  MaxSum   rebalance-gain")
	var cancelled int
	for day := 1; day <= 7; day++ {
		// Morning: new events are announced; each conflicts with a few
		// same-day events (overlapping time slots).
		newEvents := 3 + rng.Intn(4)
		firstToday := arr.NumEvents()
		for i := 0; i < newEvents; i++ {
			var conflicts []int
			for v := firstToday; v < arr.NumEvents(); v++ {
				if rng.Float64() < 0.4 {
					conflicts = append(conflicts, v)
				}
			}
			if _, err := arr.AddEvent(geacc.Event{Attrs: vec(), Cap: 3 + rng.Intn(10)}, conflicts); err != nil {
				log.Fatal(err)
			}
		}
		// Through the day: users sign up.
		for i := 0; i < 20+rng.Intn(30); i++ {
			if _, err := arr.AddUser(geacc.User{Attrs: vec(), Cap: 1 + rng.Intn(3)}); err != nil {
				log.Fatal(err)
			}
		}
		// Occasionally an organizer cancels.
		if day > 1 && rng.Float64() < 0.5 {
			v := rng.Intn(arr.NumEvents())
			if err := arr.CancelEvent(v); err != nil {
				log.Fatal(err)
			}
			cancelled++
		}
		// Nightly rebalance.
		gain, err := arr.Rebalance()
		if err != nil {
			log.Fatal(err)
		}
		m := arr.Matching()
		fmt.Printf("%3d  %6d  %5d  %14d  %7.2f  %+.2f\n",
			day, arr.NumEvents(), arr.NumUsers(), m.Size(), arr.MaxSum(), gain)
	}

	fmt.Printf("\nweek done: %d events announced (%d cancelled), %d users\n",
		arr.NumEvents(), cancelled, arr.NumUsers())
	fmt.Println("the arrangement stayed feasible through every arrival and cancellation;")
	fmt.Println("nightly rebalances recovered the drift that online placement accumulates.")
}
