// Quickstart: the paper's TABLE I instance end to end.
//
// Three events (capacities 5, 3, 2), five users (capacities 3, 1, 1, 2, 3),
// explicit interestingness values, and one conflicting pair {v1, v3}. The
// exact optimum is 4.39; Greedy-GEACC finds 4.28 and MinCostFlow-GEACC 4.13,
// exactly the walkthroughs of Examples 1-3 in the paper.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/ebsnlab/geacc"
)

func main() {
	problem, err := geacc.NewProblem(
		[]geacc.Event{{Cap: 5}, {Cap: 3}, {Cap: 2}},
		[]geacc.User{{Cap: 3}, {Cap: 1}, {Cap: 1}, {Cap: 2}, {Cap: 3}},
		geacc.WithSimilarityMatrix([][]float64{
			{0.93, 0.43, 0.84, 0.64, 0.65},
			{0, 0.35, 0.19, 0.21, 0.4},
			{0.86, 0.57, 0.78, 0.79, 0.68},
		}),
		geacc.WithConflictPairs([][2]int{{0, 2}}), // v1 and v3 clash
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("TABLE I instance: %d events, %d users, upper bound %.2f\n\n",
		problem.NumEvents(), problem.NumUsers(), problem.UpperBound())

	for _, algo := range []geacc.Algorithm{geacc.Exact, geacc.Greedy, geacc.MinCostFlow} {
		m, err := problem.Solve(algo)
		if err != nil {
			log.Fatal(err)
		}
		if err := problem.Validate(m); err != nil {
			log.Fatalf("%v produced an infeasible arrangement: %v", algo, err)
		}
		fmt.Printf("%-12s MaxSum = %.2f\n", algo, m.MaxSum())
		for _, p := range m.SortedPairs() {
			fmt.Printf("    v%d <- u%d  (interest %.2f)\n", p.V+1, p.U+1, p.Sim)
		}
		fmt.Println()
	}
}
