// Algorithm comparison: the quality/time trade-off between Greedy-GEACC,
// MinCostFlow-GEACC and the random baselines on a synthetic workload, with
// the conflict-free relaxation as an upper bound on the (intractable)
// optimum — a miniature of the paper's Fig. 3.
//
// Run with: go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/ebsnlab/geacc"
)

const (
	dim  = 10
	maxT = 100.0
)

// instance generates a random GEACC problem: |V| events, |U| users, uniform
// attributes and capacities, and a random conflict set of the given density.
func instance(rng *rand.Rand, nv, nu int, cfRatio float64) *geacc.Problem {
	vec := func() []float64 {
		v := make([]float64, dim)
		for i := range v {
			v[i] = rng.Float64() * maxT
		}
		return v
	}
	events := make([]geacc.Event, nv)
	for i := range events {
		events[i] = geacc.Event{Attrs: vec(), Cap: 1 + rng.Intn(20)}
	}
	users := make([]geacc.User, nu)
	for i := range users {
		users[i] = geacc.User{Attrs: vec(), Cap: 1 + rng.Intn(4)}
	}
	var pairs [][2]int
	for i := 0; i < nv; i++ {
		for j := i + 1; j < nv; j++ {
			if rng.Float64() < cfRatio {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	p, err := geacc.NewProblem(events, users,
		geacc.WithEuclideanSimilarity(dim, maxT),
		geacc.WithConflictPairs(pairs),
	)
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func main() {
	rng := rand.New(rand.NewSource(42))
	for _, size := range []struct{ nv, nu int }{{20, 200}, {50, 500}, {100, 1000}} {
		p := instance(rng, size.nv, size.nu, 0.25)
		ub := p.UpperBound()
		fmt.Printf("|V|=%d |U|=%d (conflict density 0.25, relaxation bound %.1f)\n",
			size.nv, size.nu, ub)
		fmt.Printf("    %-12s %10s %10s %10s\n", "algorithm", "MaxSum", "% of UB", "time")
		for _, algo := range []geacc.Algorithm{
			geacc.Greedy, geacc.MinCostFlow, geacc.RandomV, geacc.RandomU,
		} {
			start := time.Now()
			m, err := p.SolveOpts(algo, geacc.SolveOptions{Seed: 7})
			if err != nil {
				log.Fatal(err)
			}
			elapsed := time.Since(start)
			if err := p.Validate(m); err != nil {
				log.Fatalf("%v: %v", algo, err)
			}
			fmt.Printf("    %-12s %10.2f %9.1f%% %10s\n",
				algo, m.MaxSum(), 100*m.MaxSum()/ub, elapsed.Round(time.Microsecond))
		}
		fmt.Println()
	}
	fmt.Println("expected shape (paper Fig. 3): greedy wins MaxSum at a fraction of")
	fmt.Println("mincostflow's cost; both dominate the random baselines.")
}
