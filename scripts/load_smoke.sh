#!/usr/bin/env bash
# Load smoke test: build the real geacc-server and geacc-load binaries,
# boot the server, and run ~30s of closed-loop load across both workload
# shapes — stateless solves and stateful instance-delta streams. Passes
# when both runs show nonzero throughput and zero hard failures (no 5xx,
# no transport errors). This is the "does the service survive sustained
# concurrent load on a real binary" check; latency regressions are gated
# separately by `make bench-server` / `geacc-load -compare`.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${SMOKE_PORT:-$((18080 + RANDOM % 1000))}"
BASE="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
SERVER_PID=""
# Per-scenario measure phase; two scenarios plus warmups ≈ 30s total.
MEASURE="${LOAD_SMOKE_MEASURE:-12s}"
WARMUP="${LOAD_SMOKE_WARMUP:-2s}"

cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    echo "--- server log (tail) ---" >&2
    tail -50 "$TMP/server.log" >&2 || true
    exit 1
}

echo "== building geacc-server and geacc-load"
go build -o "$TMP/geacc-server" ./cmd/geacc-server
go build -o "$TMP/geacc-load" ./cmd/geacc-load

echo "== starting on :${PORT}"
"$TMP/geacc-server" -addr "127.0.0.1:${PORT}" -log-format json \
    >"$TMP/server.log" 2>&1 &
SERVER_PID=$!

echo "== waiting for /readyz"
for i in $(seq 1 100); do
    if curl -fsS "$BASE/readyz" >/dev/null 2>&1; then
        break
    fi
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited during startup"
    [ "$i" = 100 ] && fail "/readyz never answered 200"
    sleep 0.1
done

for scenario in solve-greedy delta-mix; do
    echo "== ${scenario}: closed loop, warmup ${WARMUP}, measure ${MEASURE}"
    "$TMP/geacc-load" -addr "$BASE" -scenario "$scenario" \
        -concurrency 8 -warmup "$WARMUP" -measure "$MEASURE" \
        -out "$TMP/${scenario}.json" || fail "${scenario}: load run failed"
    jq -e '.requests > 0 and .achieved_rps > 0' "$TMP/${scenario}.json" >/dev/null \
        || fail "${scenario}: zero throughput: $(cat "$TMP/${scenario}.json")"
    jq -e '.errors == 0 and ((.status["5xx"] // 0) == 0)' "$TMP/${scenario}.json" >/dev/null \
        || fail "${scenario}: hard failures: $(cat "$TMP/${scenario}.json")"
    echo "   $(jq -r '"\(.requests) requests, \(.achieved_rps) req/s, p99 \(.p99_seconds)s"' "$TMP/${scenario}.json")"
done

echo "== server survived; checking it is still ready"
curl -fsS "$BASE/readyz" >/dev/null || fail "server not ready after load"

# solve-greedy cycles a small pool of identical bodies with the solve cache
# on (the default), so a healthy run must have produced memo hits.
echo "== checking the solve cache saw hits"
HITS="$(curl -fsS "$BASE/metrics" | awk '$1 == "geacc_solve_cache_hits_total" {print $2}')"
[ -n "$HITS" ] || fail "/metrics does not export geacc_solve_cache_hits_total"
[ "$HITS" -gt 0 ] || fail "solve cache saw zero hits under a repeating workload"
echo "   geacc_solve_cache_hits_total=${HITS}"

echo "PASS: load smoke"
