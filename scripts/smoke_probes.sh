#!/usr/bin/env bash
# Probe smoke test: build the real geacc-server, boot it with persistence,
# wait for readiness, and exercise every operational surface once —
# /healthz, /readyz, /statusz, /version, /metrics, /instances/{id}/stats,
# and the X-Request-ID correlation contract. This is the "does the ops
# surface actually come up on a real binary" check the unit tests (which
# drive handlers in-process) cannot give.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${SMOKE_PORT:-$((18080 + RANDOM % 1000))}"
BASE="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
SERVER_PID=""

cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    echo "--- server log ---" >&2
    cat "$TMP/server.log" >&2 || true
    exit 1
}

echo "== building geacc-server"
go build -o "$TMP/geacc-server" ./cmd/geacc-server

echo "== starting on :${PORT} with -data-dir"
"$TMP/geacc-server" -addr "127.0.0.1:${PORT}" -data-dir "$TMP/data" \
    -log-format json >"$TMP/server.log" 2>&1 &
SERVER_PID=$!

echo "== waiting for /readyz"
for i in $(seq 1 100); do
    if curl -fsS "$BASE/readyz" >/dev/null 2>&1; then
        break
    fi
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited during startup"
    [ "$i" = 100 ] && fail "/readyz never answered 200"
    sleep 0.1
done

echo "== probes"
curl -fsS "$BASE/healthz" | grep -q ok || fail "/healthz"
curl -fsS "$BASE/readyz" | jq -e '.ready == true and .checks.replay == "ok" and .checks.store == "ok"' \
    >/dev/null || fail "/readyz body"

echo "== statusz"
curl -fsS "$BASE/statusz" | jq -e '
    .service == "geacc-server"
    and (.build.version | length > 0)
    and (.uptime_seconds >= 0)
    and .ready == true
    and has("endpoints") and has("solvers")' >/dev/null || fail "/statusz body"

echo "== version + metrics"
curl -fsS "$BASE/version" | jq -e '.version and .go_version' >/dev/null || fail "/version body"
METRICS="$(curl -fsS "$BASE/metrics")"
echo "$METRICS" | grep -q '^geacc_build_info{' || fail "metrics lack geacc_build_info"
echo "$METRICS" | grep -q '^geacc_process_uptime_seconds ' || fail "metrics lack uptime"
echo "$METRICS" | grep -q 'geacc_http_window_seconds_rate{path="/readyz"' \
    || fail "metrics lack rolling windows"

echo "== request-ID correlation"
GEN_ID="$(curl -fsS -D - -o /dev/null "$BASE/healthz" | tr -d '\r' \
    | awk 'tolower($1) == "x-request-id:" {print $2}')"
[ -n "$GEN_ID" ] || fail "no X-Request-ID assigned"
ECHO_ID="$(curl -fsS -D - -o /dev/null -H 'X-Request-ID: smoke-probe-1' "$BASE/healthz" \
    | tr -d '\r' | awk 'tolower($1) == "x-request-id:" {print $2}')"
[ "$ECHO_ID" = "smoke-probe-1" ] || fail "inbound X-Request-ID not honored (got '$ECHO_ID')"
curl -fsS -o /dev/null -w '' "$BASE/instances" || true
curl -sS -H 'X-Request-ID: smoke-probe-2' "$BASE/instances/nope" \
    | jq -e '.request_id == "smoke-probe-2"' >/dev/null || fail "error body lacks request_id"

echo "== instance stats"
curl -fsS -XPOST -d '{"id":"smoke","sim":"euclidean","dim":2,"max_t":10}' \
    "$BASE/instances" >/dev/null || fail "create instance"
curl -fsS -XPOST -d '{"attrs":[1,2],"cap":2}' "$BASE/instances/smoke/events" >/dev/null
curl -fsS -XPOST -d '{"attrs":[1,1],"cap":1}' "$BASE/instances/smoke/users" >/dev/null
curl -fsS -XPOST "$BASE/instances/smoke/rebalance?scope=dirty" >/dev/null
curl -fsS "$BASE/instances/smoke/stats" | jq -e '
    .persistent == true
    and .op_counts.add_event == 1
    and .op_counts.add_user == 1
    and .op_counts.rebalance == 1
    and .seq == 3
    and (.recent_rebalances | length) == 1
    and (.recent_rebalances[0].request_id | length > 0)' >/dev/null || fail "/instances/smoke/stats body"

grep -q '"request_id"' "$TMP/server.log" || fail "server log lines lack request_id"

echo "PASS: probe smoke"
