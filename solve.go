package geacc

import (
	"github.com/ebsnlab/geacc/internal/core"
)

// SolvePortfolio races Greedy, MinCostFlow and both random baselines
// concurrently and returns the best feasible arrangement. Useful when the
// instance's conflict structure makes the winner hard to predict (greedy
// usually wins, but MinCostFlow is optimal when conflicts are absent).
func (p *Problem) SolvePortfolio(seed int64) (*Matching, error) {
	best, _, err := core.Portfolio(p.in,
		[]string{"greedy", "mincostflow", "random-v", "random-u"}, seed)
	return best, err
}

// Improve post-optimizes a feasible matching with 1-exchange local search
// (add a feasible pair; replace a pair's user or event with a
// strictly-better feasible alternative) until a local optimum. The result
// is never worse than the input.
func (p *Problem) Improve(m *Matching) (*Matching, error) {
	improved, _, err := core.LocalSearch(p.in, m, core.LocalSearchOptions{})
	return improved, err
}

// SolveBudgeted runs Greedy-GEACC with paid arrangements: prices[v] is
// event v's attendance price and budgets[u] caps user u's total spending.
// The returned arrangement satisfies the capacity, conflict, and budget
// constraints.
func (p *Problem) SolveBudgeted(prices, budgets []float64) (*Matching, error) {
	b := &core.Budget{Prices: prices, Budgets: budgets}
	return core.BudgetedGreedy(p.in, b)
}

// Trace solves with Greedy-GEACC while recording every heap-pop decision —
// the walkthrough narrative of the paper's Example 3. Useful for explaining
// to an organizer why a particular user was (not) arranged.
func (p *Problem) Trace() (*Matching, []TraceStep) {
	var steps []TraceStep
	m := core.GreedyOpts(p.in, core.GreedyOptions{
		Trace: func(s core.TraceStep) { steps = append(steps, s) },
	})
	return m, steps
}

// TraceStep records one greedy decision: the popped pair, whether it was
// accepted, and the rejection reason otherwise ("event-full", "user-full",
// or "conflict").
type TraceStep = core.TraceStep
